//! Micro-op queue helper for writing workload state machines.
//!
//! Workload programs are state machines whose steps emit batches of
//! instructions and then wait for tagged values. [`Ops`] manages the
//! emission queue, tag allocation, and delivered-value storage, so a
//! workload's `ThreadProgram::fetch` reduces to:
//!
//! ```ignore
//! fn fetch(&mut self) -> Fetch {
//!     loop {
//!         if let Some(f) = self.ops.poll() { return f; }
//!         if !self.step() { return Fetch::Done; }
//!     }
//! }
//! ```
//!
//! where `step` inspects delivered values, pushes more ops, and advances
//! the state. Everything is `Clone`, so W+ checkpoints work by cloning
//! the whole program.

use std::collections::VecDeque;

use asymfence_common::hash::FxHashMap;

use asymfence::prelude::{Addr, Fetch, FenceRole, FenceSite, Instr, RmwKind};

/// A tag identifying a delivered value.
pub type Tag = u64;

/// Queue of instructions to emit plus delivered-value storage.
#[derive(Clone, Debug, Default)]
pub struct Ops {
    queue: VecDeque<Instr>,
    waiting: Option<Tag>,
    values: FxHashMap<Tag, u64>,
    next_tag: Tag,
}

impl Ops {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_tag(&mut self) -> Tag {
        self.next_tag += 1;
        self.next_tag
    }

    /// Emits a tagged load; the value is later available via
    /// [`Ops::take`].
    pub fn load(&mut self, addr: Addr) -> Tag {
        let tag = self.fresh_tag();
        self.queue.push_back(Instr::Load {
            addr,
            tag: Some(tag),
        });
        tag
    }

    /// Emits an untagged load (the program does not consume the value).
    pub fn load_untagged(&mut self, addr: Addr) {
        self.queue.push_back(Instr::Load { addr, tag: None });
    }

    /// Emits a store.
    pub fn store(&mut self, addr: Addr, value: u64) {
        self.queue.push_back(Instr::Store { addr, value });
    }

    /// Emits an atomic read-modify-write; the old value is later
    /// available via [`Ops::take`].
    pub fn rmw(&mut self, addr: Addr, op: RmwKind) -> Tag {
        let tag = self.fresh_tag();
        self.queue.push_back(Instr::Rmw { addr, op, tag });
        tag
    }

    /// Emits an anonymous fence (strength from the design's role mapping).
    pub fn fence(&mut self, role: FenceRole) {
        self.queue.push_back(Instr::fence(role));
    }

    /// Emits a fence at an addressable static site, so a per-site
    /// `FenceAssignment` in the machine config can override its strength.
    pub fn fence_at(&mut self, site: FenceSite, role: FenceRole) {
        self.queue.push_back(Instr::fence_at(site, role));
    }

    /// Emits `cycles` units of compute.
    pub fn compute(&mut self, cycles: u64) {
        if cycles > 0 {
            self.queue.push_back(Instr::Compute { cycles });
        }
    }

    /// Takes a delivered value.
    ///
    /// # Panics
    ///
    /// Panics if the tag has not been delivered — a workload bug: `step`
    /// must only run after the queue drained, which implies every tagged
    /// op has delivered.
    pub fn take(&mut self, tag: Tag) -> u64 {
        self.values
            .remove(&tag)
            .unwrap_or_else(|| panic!("tag {tag} not delivered"))
    }

    /// Pops the next fetch action, or `None` when the workload's `step`
    /// must produce more work.
    pub fn poll(&mut self) -> Option<Fetch> {
        if self.waiting.is_some() {
            return Some(Fetch::Await);
        }
        let instr = self.queue.pop_front()?;
        match &instr {
            Instr::Load { tag: Some(t), .. } | Instr::Rmw { tag: t, .. } => {
                self.waiting = Some(*t);
            }
            _ => {}
        }
        Some(Fetch::Instr(instr))
    }

    /// Records a delivered value (call from `ThreadProgram::deliver`).
    pub fn deliver(&mut self, tag: Tag, value: u64) {
        self.values.insert(tag, value);
        if self.waiting == Some(tag) {
            self.waiting = None;
        }
    }

    /// Whether no instructions remain queued and nothing is awaited.
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && self.waiting.is_none()
    }

    /// Tag of the first tagged instruction awaited or still queued
    /// (useful in tests that hand-feed values).
    pub fn next_pending_tag(&self) -> Option<Tag> {
        if let Some(t) = self.waiting {
            return Some(t);
        }
        self.queue.iter().find_map(|i| match i {
            Instr::Load { tag: Some(t), .. } | Instr::Rmw { tag: t, .. } => Some(*t),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_emits_in_order_and_waits_on_tags() {
        let mut ops = Ops::new();
        ops.store(Addr::new(0), 1);
        let t = ops.load(Addr::new(8));
        ops.compute(5);
        assert!(matches!(ops.poll(), Some(Fetch::Instr(Instr::Store { .. }))));
        assert!(matches!(ops.poll(), Some(Fetch::Instr(Instr::Load { .. }))));
        assert!(matches!(ops.poll(), Some(Fetch::Await)), "blocked on load");
        ops.deliver(t, 42);
        assert!(matches!(
            ops.poll(),
            Some(Fetch::Instr(Instr::Compute { cycles: 5 }))
        ));
        assert!(ops.poll().is_none());
        assert_eq!(ops.take(t), 42);
        assert!(ops.is_drained());
    }

    #[test]
    fn tags_are_unique() {
        let mut ops = Ops::new();
        let a = ops.load(Addr::new(0));
        let b = ops.load(Addr::new(8));
        assert_ne!(a, b);
    }

    #[test]
    fn zero_compute_is_skipped() {
        let mut ops = Ops::new();
        ops.compute(0);
        assert!(ops.poll().is_none());
    }

    #[test]
    #[should_panic(expected = "not delivered")]
    fn take_undelivered_panics() {
        let mut ops = Ops::new();
        let t = ops.load(Addr::new(0));
        let _ = ops.take(t);
    }
}
