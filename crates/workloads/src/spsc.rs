//! Lamport's single-producer/single-consumer ring buffer.
//!
//! A producer writes a payload slot and then publishes a new head index; a
//! consumer polls the head, reads the slot, and advances its tail. Under
//! TSO this classic queue needs **no fences** (stores publish in order,
//! loads observe in order) — a useful negative control next to the
//! fence-hungry idioms — and it streams cache lines between two cores
//! continuously, stressing the coherence layer's downgrade/upgrade paths.
//! The consumer verifies every payload, so any ordering or coherence bug
//! shows up as a corruption count.

use asymfence::prelude::{Addr, Fetch, ThreadProgram};
use asymfence_common::config::MachineConfig;
use asymfence_common::rng::hash64;

use crate::layout::AddressAllocator;
use crate::ops::{Ops, Tag};

/// Shared layout of the ring.
#[derive(Clone, Debug)]
pub struct RingLayout {
    head: Addr,
    tail: Addr,
    slots: Addr,
    capacity: u64,
}

impl RingLayout {
    /// Allocates a ring with `capacity` one-word slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(alloc: &mut AddressAllocator, capacity: u64) -> Self {
        assert!(capacity > 0);
        RingLayout {
            head: alloc.isolated_word(),
            tail: alloc.isolated_word(),
            slots: alloc.array(capacity),
            capacity,
        }
    }

    fn slot(&self, idx: u64) -> Addr {
        self.slots.offset((idx % self.capacity) * 8)
    }
}

/// The payload for sequence number `i` (verifiable by the consumer).
pub fn payload(i: u64) -> u64 {
    hash64(i ^ 0x5B5C).max(1)
}

#[derive(Clone, Debug)]
enum ProdSt {
    Produce,
    WaitRoom { tag: Tag },
    Finished,
}

/// The producing thread.
#[derive(Clone)]
pub struct Producer {
    ring: RingLayout,
    items: u64,
    next: u64,
    ops: Ops,
    state: ProdSt,
    /// Items published.
    pub produced: u64,
}

impl Producer {
    fn new(ring: RingLayout, items: u64) -> Self {
        Producer {
            ring,
            items,
            next: 0,
            ops: Ops::new(),
            state: ProdSt::Produce,
            produced: 0,
        }
    }

    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, ProdSt::Finished) {
            ProdSt::Produce => {
                if self.next >= self.items {
                    self.state = ProdSt::Finished;
                    return false;
                }
                // Check for room: head may run at most `capacity` ahead of
                // the consumer's tail.
                let tag = self.ops.load(self.ring.tail);
                self.state = ProdSt::WaitRoom { tag };
                true
            }
            ProdSt::WaitRoom { tag } => {
                let tail = self.ops.take(tag);
                if self.next - tail >= self.ring.capacity {
                    self.ops.compute(30);
                    let tag = self.ops.load(self.ring.tail);
                    self.state = ProdSt::WaitRoom { tag };
                    return true;
                }
                // Write the slot, then publish: two stores whose order TSO
                // preserves without a fence.
                self.ops.store(self.ring.slot(self.next), payload(self.next));
                self.next += 1;
                self.ops.store(self.ring.head, self.next);
                self.produced += 1;
                self.ops.compute(15);
                self.state = ProdSt::Produce;
                true
            }
            ProdSt::Finished => false,
        }
    }
}

#[derive(Clone, Debug)]
enum ConsSt {
    Poll,
    WaitHead { tag: Tag },
    ReadSlot { tag: Tag },
    Finished,
}

/// The consuming thread.
#[derive(Clone)]
pub struct Consumer {
    ring: RingLayout,
    items: u64,
    next: u64,
    ops: Ops,
    state: ConsSt,
    /// Items consumed.
    pub consumed: u64,
    /// Payload mismatches (must stay 0 under TSO).
    pub corruptions: u64,
}

impl Consumer {
    fn new(ring: RingLayout, items: u64) -> Self {
        Consumer {
            ring,
            items,
            next: 0,
            ops: Ops::new(),
            state: ConsSt::Poll,
            consumed: 0,
            corruptions: 0,
        }
    }

    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, ConsSt::Finished) {
            ConsSt::Poll => {
                if self.next >= self.items {
                    self.state = ConsSt::Finished;
                    return false;
                }
                let tag = self.ops.load(self.ring.head);
                self.state = ConsSt::WaitHead { tag };
                true
            }
            ConsSt::WaitHead { tag } => {
                if self.ops.take(tag) <= self.next {
                    self.ops.compute(25);
                    let tag = self.ops.load(self.ring.head);
                    self.state = ConsSt::WaitHead { tag };
                } else {
                    // Head passed us: the slot's payload must be visible
                    // (TSO store-store order from the producer, load-load
                    // order on our side).
                    let tag = self.ops.load(self.ring.slot(self.next));
                    self.state = ConsSt::ReadSlot { tag };
                }
                true
            }
            ConsSt::ReadSlot { tag } => {
                let v = self.ops.take(tag);
                if v != payload(self.next) {
                    self.corruptions += 1;
                }
                self.next += 1;
                self.consumed += 1;
                self.ops.store(self.ring.tail, self.next);
                self.state = ConsSt::Poll;
                true
            }
            ConsSt::Finished => false,
        }
    }
}

macro_rules! impl_program {
    ($ty:ident, $name:literal) => {
        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct($name).field("next", &self.next).finish()
            }
        }
        impl ThreadProgram for $ty {
            fn fetch(&mut self) -> Fetch {
                loop {
                    if let Some(f) = self.ops.poll() {
                        return f;
                    }
                    if !self.step() {
                        return Fetch::Done;
                    }
                }
            }
            fn deliver(&mut self, tag: u64, value: u64) {
                self.ops.deliver(tag, value);
            }
            fn snapshot(&self) -> Box<dyn ThreadProgram> {
                Box::new(self.clone())
            }
            fn name(&self) -> &str {
                $name
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
    };
}
impl_program!(Producer, "spsc-producer");
impl_program!(Consumer, "spsc-consumer");

/// Builds `(producer, consumer)` sharing a ring of `capacity` slots.
pub fn pair(
    cfg: &MachineConfig,
    capacity: u64,
    items: u64,
) -> (Box<dyn ThreadProgram>, Box<dyn ThreadProgram>) {
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    let ring = RingLayout::new(&mut alloc, capacity);
    (
        Box::new(Producer::new(ring.clone(), items)),
        Box::new(Consumer::new(ring, items)),
    )
}

/// Reads `(produced, consumed, corruptions)` off a finished machine.
pub fn tally(m: &asymfence::Machine) -> (u64, u64, u64) {
    let (mut p, mut c, mut bad) = (0, 0, 0);
    for i in 0..m.config().num_cores {
        let prog = m.thread_program(asymfence_common::ids::CoreId(i));
        if let Some(x) = prog.as_any().downcast_ref::<Producer>() {
            p += x.produced;
        }
        if let Some(x) = prog.as_any().downcast_ref::<Consumer>() {
            c += x.consumed;
            bad += x.corruptions;
        }
    }
    (p, c, bad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    fn run(design: FenceDesign, capacity: u64, items: u64) -> (u64, u64, u64) {
        let cfg = MachineConfig::builder()
            .cores(2)
            .fence_design(design)
            .build();
        let mut m = Machine::new(&cfg);
        let (p, c) = pair(&cfg, capacity, items);
        m.add_thread(p);
        m.add_thread(c);
        assert_eq!(m.run(1_000_000_000), RunOutcome::Finished, "{design}");
        tally(&m)
    }

    #[test]
    fn all_items_arrive_intact_without_fences() {
        let (p, c, bad) = run(FenceDesign::SPlus, 8, 200);
        assert_eq!(p, 200);
        assert_eq!(c, 200);
        assert_eq!(bad, 0, "TSO needs no fences for Lamport's SPSC queue");
    }

    #[test]
    fn tiny_ring_applies_backpressure_correctly() {
        let (p, c, bad) = run(FenceDesign::SPlus, 1, 60);
        assert_eq!((p, c, bad), (60, 60, 0), "capacity-1 ring fully serializes");
    }

    #[test]
    fn weak_designs_do_not_disturb_the_queue() {
        for design in [FenceDesign::WsPlus, FenceDesign::WPlus, FenceDesign::Wee] {
            let (p, c, bad) = run(design, 8, 120);
            assert_eq!((p, c, bad), (120, 120, 0), "{design}");
        }
    }

    #[test]
    fn payloads_are_nonzero_and_distinct() {
        let a = payload(1);
        let b = payload(2);
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
