//! Dekker's mutual-exclusion algorithm (the paper's running example,
//! Figure 1a).
//!
//! Two threads guard a critical section with per-thread intent flags and
//! a turn word. The entry protocol is the canonical store→**fence**→load
//! pattern: announce `flag[me] = 1`, fence, read `flag[other]`. A second
//! fence sits on the backoff path (retract `flag[me]`, fence, spin on
//! `turn`) so every store→load window in the protocol is fenced and SC
//! executions stay SC. Under WS+/SW+ the paper makes the hot thread's
//! entry fence weak (`Critical`) and everything else strong
//! (`NonCritical`), and under W+ all fences are weak.
//!
//! Each fence carries a stable [`FenceSite`] (thread id), so the
//! synthesis engine can search per-site wf/sf assignments; a broken
//! assignment shows up as a Shasha-Snir SC violation (both threads in the
//! critical section) or a deadlock, both of which the explorer oracle
//! detects.

use asymfence::prelude::{Addr, Fetch, FenceRole, FenceSite, ThreadProgram};
use asymfence_common::config::MachineConfig;
use asymfence_common::rng::SimRng;

use crate::layout::AddressAllocator;
use crate::ops::{Ops, Tag};

/// Shared words of the Dekker protocol.
#[derive(Clone, Debug)]
pub struct DekkerLayout {
    /// Intent flags, one isolated word per thread.
    pub flag: [Addr; 2],
    /// Whose turn it is to back off.
    pub turn: Addr,
    /// Critical-section witness word.
    pub owner: Addr,
}

impl DekkerLayout {
    /// Allocates the protocol words on isolated cache lines.
    pub fn new(alloc: &mut AddressAllocator) -> Self {
        DekkerLayout {
            flag: [alloc.isolated_word(), alloc.isolated_word()],
            turn: alloc.isolated_word(),
            owner: alloc.isolated_word(),
        }
    }
}

/// The entry-protocol fence site of thread `tid` (0 or 1).
pub fn entry_site(tid: usize) -> FenceSite {
    FenceSite(2 * tid as u32)
}

/// The backoff fence site of thread `tid`: between the `flag[me] := 0`
/// retraction and the turn-wait loop. Without it the retraction sits in
/// the TSO write buffer while the loop reads `turn` — an unfenced st→ld
/// window that breaks sequential consistency (though not mutual
/// exclusion). Always `NonCritical`: the backoff path is already the
/// contended slow path.
pub fn backoff_site(tid: usize) -> FenceSite {
    FenceSite(2 * tid as u32 + 1)
}

#[derive(Clone, Debug)]
enum DkState {
    Start,
    CheckOther { tag: Tag },
    CheckTurn { tag: Tag },
    WaitTurn { tag: Tag },
    EnterCs,
    VerifyCs { tag: Tag },
    ExitCs,
    Finished,
}

/// One Dekker participant performing `iterations` critical sections.
#[derive(Clone)]
pub struct DekkerThread {
    tid: usize,
    layout: DekkerLayout,
    role: FenceRole,
    iterations: u64,
    cs_compute: u64,
    rng: SimRng,
    ops: Ops,
    state: DkState,
    /// Critical sections completed.
    pub entries: u64,
    /// Times the critical-section witness was observed corrupted (must
    /// stay zero — mutual exclusion).
    pub mutex_violations: u64,
}

impl DekkerThread {
    fn other(&self) -> usize {
        1 - self.tid
    }

    /// Announce intent and read the other thread's flag — the
    /// store→fence→load at the heart of the protocol.
    fn announce(&mut self) -> DkState {
        self.ops.store(self.layout.flag[self.tid], 1);
        self.ops.fence_at(entry_site(self.tid), self.role);
        let tag = self.ops.load(self.layout.flag[self.other()]);
        DkState::CheckOther { tag }
    }

    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, DkState::Finished) {
            DkState::Start => {
                if self.entries >= self.iterations {
                    self.state = DkState::Finished;
                    return false;
                }
                self.state = self.announce();
                true
            }
            DkState::CheckOther { tag } => {
                if self.ops.take(tag) == 0 {
                    self.state = DkState::EnterCs;
                } else {
                    let tag = self.ops.load(self.layout.turn);
                    self.state = DkState::CheckTurn { tag };
                }
                true
            }
            DkState::CheckTurn { tag } => {
                if self.ops.take(tag) == self.other() as u64 {
                    // Their turn: retract intent and wait for the turn.
                    self.ops.store(self.layout.flag[self.tid], 0);
                    self.ops
                        .fence_at(backoff_site(self.tid), FenceRole::NonCritical);
                    let tag = self.ops.load(self.layout.turn);
                    self.state = DkState::WaitTurn { tag };
                } else {
                    // Our turn: re-read their flag until they back off.
                    self.ops.compute(10 + self.rng.below(10));
                    let tag = self.ops.load(self.layout.flag[self.other()]);
                    self.state = DkState::CheckOther { tag };
                }
                true
            }
            DkState::WaitTurn { tag } => {
                if self.ops.take(tag) == self.other() as u64 {
                    self.ops.compute(10 + self.rng.below(10));
                    let tag = self.ops.load(self.layout.turn);
                    self.state = DkState::WaitTurn { tag };
                } else {
                    self.state = self.announce();
                }
                true
            }
            DkState::EnterCs => {
                self.ops.store(self.layout.owner, self.tid as u64 + 1);
                self.ops.compute(self.cs_compute);
                let tag = self.ops.load(self.layout.owner);
                self.state = DkState::VerifyCs { tag };
                true
            }
            DkState::VerifyCs { tag } => {
                if self.ops.take(tag) != self.tid as u64 + 1 {
                    self.mutex_violations += 1;
                }
                self.state = DkState::ExitCs;
                true
            }
            DkState::ExitCs => {
                self.ops.store(self.layout.turn, self.other() as u64);
                self.ops.store(self.layout.flag[self.tid], 0);
                self.entries += 1;
                self.ops.compute(20 + self.rng.below(30));
                self.state = DkState::Start;
                true
            }
            DkState::Finished => false,
        }
    }
}

impl std::fmt::Debug for DekkerThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DekkerThread")
            .field("tid", &self.tid)
            .field("entries", &self.entries)
            .field("violations", &self.mutex_violations)
            .finish()
    }
}

impl ThreadProgram for DekkerThread {
    fn fetch(&mut self) -> Fetch {
        loop {
            if let Some(f) = self.ops.poll() {
                return f;
            }
            if !self.step() {
                return Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.ops.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "dekker"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Builds the two Dekker threads. Thread 0 is the hot side (`Critical`),
/// thread 1 the rare side (`NonCritical`) — the paper's WS+ assignment.
pub fn programs(cfg: &MachineConfig, iterations: u64, seed: u64) -> Vec<Box<dyn ThreadProgram>> {
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    let layout = DekkerLayout::new(&mut alloc);
    let mut root = SimRng::new(seed ^ 0xDE44);
    (0..2)
        .map(|tid| {
            let role = if tid == 0 {
                FenceRole::Critical
            } else {
                FenceRole::NonCritical
            };
            Box::new(DekkerThread {
                tid,
                layout: layout.clone(),
                role,
                iterations,
                cs_compute: 40,
                rng: root.fork(tid as u64),
                ops: Ops::new(),
                state: DkState::Start,
                entries: 0,
                mutex_violations: 0,
            }) as Box<dyn ThreadProgram>
        })
        .collect()
}

/// Sums `(entries, mutex_violations)` over the machine's Dekker threads.
pub fn tally(m: &asymfence::Machine) -> (u64, u64) {
    let mut entries = 0;
    let mut violations = 0;
    for i in 0..m.config().num_cores {
        if let Some(p) = m
            .thread_program(asymfence_common::ids::CoreId(i))
            .as_any()
            .downcast_ref::<DekkerThread>()
        {
            entries += p.entries;
            violations += p.mutex_violations;
        }
    }
    (entries, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    fn run(design: FenceDesign, iters: u64) -> (u64, u64) {
        let cfg = MachineConfig::builder()
            .cores(2)
            .fence_design(design)
            .build();
        let mut m = Machine::new(&cfg);
        for p in programs(&cfg, iters, 5) {
            m.add_thread(p);
        }
        assert_eq!(m.run(400_000_000), RunOutcome::Finished, "{design}");
        tally(&m)
    }

    #[test]
    fn mutual_exclusion_under_all_safe_designs() {
        for design in [
            FenceDesign::SPlus,
            FenceDesign::WsPlus,
            FenceDesign::SwPlus,
            FenceDesign::WPlus,
            FenceDesign::Wee,
        ] {
            let (entries, violations) = run(design, 8);
            assert_eq!(entries, 16, "{design}");
            assert_eq!(violations, 0, "{design}");
        }
    }

    #[test]
    fn sites_are_per_thread_and_contiguous() {
        assert_eq!(entry_site(0), FenceSite(0));
        assert_eq!(backoff_site(0), FenceSite(1));
        assert_eq!(entry_site(1), FenceSite(2));
        assert_eq!(backoff_site(1), FenceSite(3));
        assert_ne!(entry_site(0), FenceSite::ANON);
    }
}
