//! Lamport's Bakery algorithm (paper §4.3, Figure 6).
//!
//! A lock-free mutual-exclusion protocol for any number of threads. Each
//! thread announces it is choosing (`E[i] = 1`), **fences**, reads the
//! other threads' state to pick a ticket, then waits its turn. The
//! store-then-read pattern around the fence creates fence groups of
//! arbitrary size and membership (Figures 6b/6c).
//!
//! Two role assignments reproduce the paper's usage: give one thread
//! priority (its fences `Critical`, everyone else `NonCritical` — the
//! WS+ scenario) or let every thread run fast (`AllCritical` — the W+
//! scenario).

use asymfence::prelude::{Addr, Fetch, FenceRole, FenceSite, ThreadProgram};
use asymfence_common::config::MachineConfig;
use asymfence_common::rng::SimRng;

use crate::layout::AddressAllocator;
use crate::ops::{Ops, Tag};

/// Which threads get the fast (weak) fence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoleAssign {
    /// Thread 0 is `Critical`, the rest `NonCritical` (WS+ usage).
    PriorityThread0,
    /// Every thread is `Critical` (W+ usage).
    AllCritical,
}

impl RoleAssign {
    fn role(self, tid: usize) -> FenceRole {
        match self {
            RoleAssign::PriorityThread0 => {
                if tid == 0 {
                    FenceRole::Critical
                } else {
                    FenceRole::NonCritical
                }
            }
            RoleAssign::AllCritical => FenceRole::Critical,
        }
    }
}

/// Shared arrays of the Bakery protocol.
#[derive(Clone, Debug)]
pub struct BakeryLayout {
    /// `E[i]`: thread `i` is in the doorway.
    pub entering: Vec<Addr>,
    /// `N[i]`: thread `i`'s ticket number.
    pub number: Vec<Addr>,
    /// Critical-section witness word.
    pub owner: Addr,
}

impl BakeryLayout {
    /// Allocates `E[n]`, `N[n]` (isolated words) and the critical-section
    /// witness word.
    pub fn new(alloc: &mut AddressAllocator, threads: usize) -> Self {
        BakeryLayout {
            entering: (0..threads).map(|_| alloc.isolated_word()).collect(),
            number: (0..threads).map(|_| alloc.isolated_word()).collect(),
            owner: alloc.isolated_word(),
        }
    }
}

#[derive(Clone, Debug)]
enum BkState {
    Start,
    ReadNumbers { tags: Vec<Tag> },
    WaitEntering { j: usize, tag: Tag },
    WaitNumber { j: usize, tag: Tag },
    EnterCs,
    VerifyCs { tag: Tag },
    ExitCs,
    Finished,
}

/// One Bakery participant performing `iterations` critical sections.
#[derive(Clone)]
pub struct BakeryThread {
    tid: usize,
    threads: usize,
    layout: BakeryLayout,
    role: FenceRole,
    iterations: u64,
    cs_compute: u64,
    rng: SimRng,
    ops: Ops,
    state: BkState,
    my_number: u64,
    /// Critical sections completed.
    pub entries: u64,
    /// Times the critical-section witness was observed corrupted (must
    /// stay zero — mutual exclusion).
    pub mutex_violations: u64,
}

impl BakeryThread {
    fn new(
        tid: usize,
        threads: usize,
        layout: BakeryLayout,
        role: FenceRole,
        iterations: u64,
        cs_compute: u64,
        rng: SimRng,
    ) -> Self {
        BakeryThread {
            tid,
            threads,
            layout,
            role,
            iterations,
            cs_compute,
            rng,
            ops: Ops::new(),
            state: BkState::Start,
            my_number: 0,
            entries: 0,
            mutex_violations: 0,
        }
    }

    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, BkState::Finished) {
            BkState::Start => {
                if self.entries >= self.iterations {
                    self.state = BkState::Finished;
                    return false;
                }
                // Doorway: E[i] = 1; fence; read everyone's numbers.
                self.ops.store(self.layout.entering[self.tid], 1);
                self.ops.fence_at(doorway_site(self.tid), self.role);
                let tags = (0..self.threads)
                    .map(|j| self.ops.load(self.layout.number[j]))
                    .collect();
                self.state = BkState::ReadNumbers { tags };
                true
            }
            BkState::ReadNumbers { tags } => {
                let max = tags
                    .into_iter()
                    .map(|t| self.ops.take(t))
                    .max()
                    .unwrap_or(0);
                self.my_number = max + 1;
                self.ops.store(self.layout.number[self.tid], self.my_number);
                self.ops.store(self.layout.entering[self.tid], 0);
                // The ticket fence: N[i] and E[i] must be visible before
                // the wait loops below read the other threads' state —
                // without it the TSO write buffer opens an unfenced
                // st→ld window and the execution is not SC.
                self.ops
                    .fence_at(ticket_site(self.tid), FenceRole::NonCritical);
                self.state = self.wait_from(0);
                true
            }
            BkState::WaitEntering { j, tag } => {
                if self.ops.take(tag) != 0 {
                    self.ops.compute(12 + self.rng.below(8));
                    let tag = self.ops.load(self.layout.entering[j]);
                    self.state = BkState::WaitEntering { j, tag };
                } else {
                    let tag = self.ops.load(self.layout.number[j]);
                    self.state = BkState::WaitNumber { j, tag };
                }
                true
            }
            BkState::WaitNumber { j, tag } => {
                let nj = self.ops.take(tag);
                let mine = (self.my_number, self.tid);
                let theirs = (nj, j);
                if nj != 0 && theirs < mine {
                    // Their turn first: spin.
                    self.ops.compute(12 + self.rng.below(8));
                    let tag = self.ops.load(self.layout.number[j]);
                    self.state = BkState::WaitNumber { j, tag };
                } else {
                    self.state = self.wait_from(j + 1);
                }
                true
            }
            BkState::EnterCs => {
                self.ops.store(self.layout.owner, self.tid as u64 + 1);
                self.ops.compute(self.cs_compute);
                let tag = self.ops.load(self.layout.owner);
                self.state = BkState::VerifyCs { tag };
                true
            }
            BkState::VerifyCs { tag } => {
                if self.ops.take(tag) != self.tid as u64 + 1 {
                    self.mutex_violations += 1;
                }
                self.state = BkState::ExitCs;
                true
            }
            BkState::ExitCs => {
                self.ops.store(self.layout.owner, 0);
                self.ops.store(self.layout.number[self.tid], 0);
                self.entries += 1;
                self.ops.compute(30 + self.rng.below(40));
                self.state = BkState::Start;
                true
            }
            BkState::Finished => false,
        }
    }

    /// Starts waiting on thread `j` (skipping self), or enters the
    /// critical section when all threads have been checked.
    fn wait_from(&mut self, mut j: usize) -> BkState {
        if j == self.tid {
            j += 1;
        }
        if j >= self.threads {
            return BkState::EnterCs;
        }
        let tag = self.ops.load(self.layout.entering[j]);
        BkState::WaitEntering { j, tag }
    }
}

impl std::fmt::Debug for BakeryThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BakeryThread")
            .field("tid", &self.tid)
            .field("entries", &self.entries)
            .field("violations", &self.mutex_violations)
            .finish()
    }
}

impl ThreadProgram for BakeryThread {
    fn fetch(&mut self) -> Fetch {
        loop {
            if let Some(f) = self.ops.poll() {
                return f;
            }
            if !self.step() {
                return Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.ops.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "bakery"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The doorway fence site of thread `tid` (between `E[i] := 1` and the
/// number reads).
pub fn doorway_site(tid: usize) -> FenceSite {
    FenceSite(2 * tid as u32)
}

/// The ticket fence site of thread `tid` (between the `N[i]`/`E[i]`
/// publication stores and the wait loops). Always `NonCritical`: it sits
/// on the already-contended slow path.
pub fn ticket_site(tid: usize) -> FenceSite {
    FenceSite(2 * tid as u32 + 1)
}

/// Builds the Bakery participants.
pub fn programs(
    cfg: &MachineConfig,
    roles: RoleAssign,
    iterations: u64,
    seed: u64,
) -> Vec<Box<dyn ThreadProgram>> {
    let threads = cfg.num_cores;
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    let layout = BakeryLayout::new(&mut alloc, threads);
    let mut root = SimRng::new(seed ^ 0x00BA_4E41);
    (0..threads)
        .map(|tid| {
            Box::new(BakeryThread::new(
                tid,
                threads,
                layout.clone(),
                roles.role(tid),
                iterations,
                60,
                root.fork(tid as u64),
            )) as Box<dyn ThreadProgram>
        })
        .collect()
}

/// Sums `(entries, mutex_violations)` over the machine's Bakery threads.
pub fn tally(m: &asymfence::Machine) -> (u64, u64) {
    let mut entries = 0;
    let mut violations = 0;
    for i in 0..m.config().num_cores {
        if let Some(p) = m
            .thread_program(asymfence_common::ids::CoreId(i))
            .as_any()
            .downcast_ref::<BakeryThread>()
        {
            entries += p.entries;
            violations += p.mutex_violations;
        }
    }
    (entries, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    fn run(design: FenceDesign, roles: RoleAssign, cores: usize, iters: u64) -> (u64, u64) {
        let cfg = MachineConfig::builder()
            .cores(cores)
            .fence_design(design)
            .build();
        let mut m = Machine::new(&cfg);
        for p in programs(&cfg, roles, iters, 77) {
            m.add_thread(p);
        }
        assert_eq!(m.run(400_000_000), RunOutcome::Finished, "{design}");
        tally(&m)
    }

    #[test]
    fn mutual_exclusion_under_s_plus() {
        let (entries, violations) = run(FenceDesign::SPlus, RoleAssign::PriorityThread0, 4, 6);
        assert_eq!(entries, 24);
        assert_eq!(violations, 0);
    }

    #[test]
    fn mutual_exclusion_under_ws_plus_with_priority_thread() {
        let (entries, violations) = run(FenceDesign::WsPlus, RoleAssign::PriorityThread0, 4, 6);
        assert_eq!(entries, 24);
        assert_eq!(violations, 0);
    }

    #[test]
    fn mutual_exclusion_under_w_plus_all_weak() {
        let (entries, violations) = run(FenceDesign::WPlus, RoleAssign::AllCritical, 4, 6);
        assert_eq!(entries, 24);
        assert_eq!(violations, 0);
    }

    #[test]
    fn mutual_exclusion_under_sw_plus() {
        let (entries, violations) = run(FenceDesign::SwPlus, RoleAssign::PriorityThread0, 3, 5);
        assert_eq!(entries, 15);
        assert_eq!(violations, 0);
    }
}
