//! The Cilk THE work-stealing deque (Frigo, Leiserson, Randall — PLDI'98),
//! exactly as the paper uses it (§4.1, Figure 5a).
//!
//! The owner `take()`s tasks from the tail with a Dekker-style protocol:
//! decrement the tail, **fence**, read the head; if a thief raced, fall
//! back to a lock. Thieves `steal()` from the head under the lock:
//! increment the head, **fence**, read the tail. The two fences form a
//! two-fence group; since stealing is rare (< 0.5 % of tasks in the
//! paper's workloads), the owner's fence is `Critical` (weak under
//! WS+/SW+) and the thief's is `NonCritical` (strong).
//!
//! The protocol pieces are written as poll-driven micro state machines
//! over [`Ops`] so workloads can embed them.
//!
//! **Native port:** `crates/native` ships the same protocol on real
//! threads as `asymfence_native::TheDeque`, parameterized over a
//! `FencePair` (the owner's fence site maps to the pair's critical
//! fence, the thief's to the non-critical one); `native_bench
//! --crossval` compares its wall-clock ranking against this simulated
//! version's cycle ranking.

use asymfence::prelude::{Addr, FenceRole, FenceSite, RmwKind};

use crate::layout::AddressAllocator;
use crate::ops::{Ops, Tag};

/// Cycles an unsuccessful lock attempt backs off before retrying.
const LOCK_BACKOFF: u64 = 24;

/// Addresses of one deque's shared state.
#[derive(Clone, Debug)]
pub struct DequeLayout {
    /// Head index (stolen end).
    pub head: Addr,
    /// Tail index (owner end).
    pub tail: Addr,
    /// Thief/conflict lock word.
    pub lock: Addr,
    slots: Addr,
    capacity: u64,
}

impl DequeLayout {
    /// Allocates a deque with `capacity` task slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(alloc: &mut AddressAllocator, capacity: u64) -> Self {
        assert!(capacity > 0);
        DequeLayout {
            head: alloc.isolated_word(),
            tail: alloc.isolated_word(),
            lock: alloc.isolated_word(),
            slots: alloc.array(capacity),
            capacity,
        }
    }

    /// Address of the slot for logical index `idx`.
    pub fn slot(&self, idx: u64) -> Addr {
        self.slots.offset((idx % self.capacity) * 8)
    }

    /// Slot capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// Owner push: write the task, then bump the tail (no fence under TSO —
/// stores are not reordered with stores).
pub fn push(deque: &DequeLayout, local_tail: u64, task: u64, ops: &mut Ops) -> u64 {
    ops.store(deque.slot(local_tail), task);
    ops.store(deque.tail, local_tail + 1);
    local_tail + 1
}

/// Result of a completed [`Take`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TakeOutcome {
    /// Got a task; the owner's cached tail becomes `new_tail`.
    Got {
        /// The task descriptor.
        task: u64,
        /// Owner's new cached tail.
        new_tail: u64,
    },
    /// The deque was empty (or the last task was stolen).
    Empty {
        /// Owner's new cached tail.
        new_tail: u64,
    },
}

#[derive(Clone, Debug)]
enum TakeSt {
    WaitHead { head: Tag },
    WaitSlot { slot: Tag },
    LockSpin { lock: Tag },
    WaitHeadLocked { head: Tag },
    WaitSlotLocked { slot: Tag },
}

/// The THE `take()` state machine (owner side).
#[derive(Clone, Debug)]
pub struct Take {
    deque: DequeLayout,
    t: u64,
    state: TakeSt,
}

impl Take {
    /// Starts a take: `local_tail` is the owner's cached tail (number of
    /// pushed-minus-taken tasks from the owner's view).
    pub fn start(deque: &DequeLayout, local_tail: u64, ops: &mut Ops) -> Take {
        Take::start_at(deque, local_tail, ops, FenceSite::ANON)
    }

    /// As [`Take::start`], but the Dekker fence carries an addressable
    /// site id so a per-site assignment can override its strength.
    pub fn start_at(deque: &DequeLayout, local_tail: u64, ops: &mut Ops, site: FenceSite) -> Take {
        debug_assert!(local_tail > 0, "caller checks its cached tail first");
        let t = local_tail - 1;
        ops.store(deque.tail, t);
        ops.fence_at(site, FenceRole::Critical);
        let head = ops.load(deque.head);
        Take {
            deque: deque.clone(),
            t,
            state: TakeSt::WaitHead { head },
        }
    }

    /// Advances the machine; call when `ops.is_drained()`. Returns the
    /// outcome once finished.
    pub fn poll(&mut self, ops: &mut Ops) -> Option<TakeOutcome> {
        match self.state.clone() {
            TakeSt::WaitHead { head } => {
                let h = ops.take(head);
                if h <= self.t {
                    let slot = ops.load(self.deque.slot(self.t));
                    self.state = TakeSt::WaitSlot { slot };
                    None
                } else {
                    // Conflict with a thief: restore the tail and settle
                    // it under the lock.
                    ops.store(self.deque.tail, self.t + 1);
                    let lock = ops.rmw(self.deque.lock, RmwKind::Cas { expect: 0, new: 1 });
                    self.state = TakeSt::LockSpin { lock };
                    None
                }
            }
            TakeSt::WaitSlot { slot } => {
                let task = ops.take(slot);
                Some(TakeOutcome::Got {
                    task,
                    new_tail: self.t,
                })
            }
            TakeSt::LockSpin { lock } => {
                if ops.take(lock) != 0 {
                    ops.compute(LOCK_BACKOFF);
                    let lock = ops.rmw(self.deque.lock, RmwKind::Cas { expect: 0, new: 1 });
                    self.state = TakeSt::LockSpin { lock };
                    return None;
                }
                // Lock held: re-decrement and re-check the head.
                ops.store(self.deque.tail, self.t);
                let head = ops.load(self.deque.head);
                self.state = TakeSt::WaitHeadLocked { head };
                None
            }
            TakeSt::WaitHeadLocked { head } => {
                let h = ops.take(head);
                if h <= self.t {
                    let slot = ops.load(self.deque.slot(self.t));
                    self.state = TakeSt::WaitSlotLocked { slot };
                    None
                } else {
                    // Truly empty: restore the tail and give up.
                    ops.store(self.deque.tail, self.t + 1);
                    ops.store(self.deque.lock, 0);
                    Some(TakeOutcome::Empty {
                        new_tail: self.t + 1,
                    })
                }
            }
            TakeSt::WaitSlotLocked { slot } => {
                let task = ops.take(slot);
                ops.store(self.deque.lock, 0);
                Some(TakeOutcome::Got {
                    task,
                    new_tail: self.t,
                })
            }
        }
    }
}

/// Result of a completed [`Steal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealOutcome {
    /// Stole a task.
    Got {
        /// The task descriptor.
        task: u64,
    },
    /// The victim's deque was empty.
    Empty,
}

#[derive(Clone, Debug)]
enum StealSt {
    LockSpin { lock: Tag },
    WaitHead { head: Tag },
    WaitTail { head: u64, tail: Tag },
    WaitSlot { slot: Tag },
}

/// The THE `steal()` state machine (thief side).
#[derive(Clone, Debug)]
pub struct Steal {
    deque: DequeLayout,
    site: FenceSite,
    state: StealSt,
}

impl Steal {
    /// Starts a steal against a victim deque.
    pub fn start(deque: &DequeLayout, ops: &mut Ops) -> Steal {
        Steal::start_at(deque, ops, FenceSite::ANON)
    }

    /// As [`Steal::start`], but the thief's fence carries an addressable
    /// site id so a per-site assignment can override its strength.
    pub fn start_at(deque: &DequeLayout, ops: &mut Ops, site: FenceSite) -> Steal {
        let lock = ops.rmw(deque.lock, RmwKind::Cas { expect: 0, new: 1 });
        Steal {
            deque: deque.clone(),
            site,
            state: StealSt::LockSpin { lock },
        }
    }

    /// Advances the machine; call when `ops.is_drained()`.
    pub fn poll(&mut self, ops: &mut Ops) -> Option<StealOutcome> {
        match self.state.clone() {
            StealSt::LockSpin { lock } => {
                if ops.take(lock) != 0 {
                    ops.compute(LOCK_BACKOFF);
                    let lock = ops.rmw(self.deque.lock, RmwKind::Cas { expect: 0, new: 1 });
                    self.state = StealSt::LockSpin { lock };
                    return None;
                }
                let head = ops.load(self.deque.head);
                self.state = StealSt::WaitHead { head };
                None
            }
            StealSt::WaitHead { head } => {
                let h = ops.take(head);
                ops.store(self.deque.head, h + 1);
                ops.fence_at(self.site, FenceRole::NonCritical);
                let tail = ops.load(self.deque.tail);
                self.state = StealSt::WaitTail { head: h, tail };
                None
            }
            StealSt::WaitTail { head, tail } => {
                let t = ops.take(tail);
                if head + 1 > t {
                    // Lost the race with the owner: undo and release.
                    ops.store(self.deque.head, head);
                    ops.store(self.deque.lock, 0);
                    Some(StealOutcome::Empty)
                } else {
                    let slot = ops.load(self.deque.slot(head));
                    self.state = StealSt::WaitSlot { slot };
                    None
                }
            }
            StealSt::WaitSlot { slot } => {
                let task = ops.take(slot);
                ops.store(self.deque.lock, 0);
                Some(StealOutcome::Got { task })
            }
        }
    }
}

/// The owner's `take()` fence site in the two-thread driver.
pub fn owner_site() -> FenceSite {
    FenceSite(0)
}

/// The thief's `steal()` fence site in the two-thread driver.
pub fn thief_site() -> FenceSite {
    FenceSite(1)
}

/// Slot capacity used by the driver's deque.
pub const DRIVER_CAPACITY: u64 = 16;

/// Rebuilds the driver's deque layout (deterministic, so site analysis
/// and program construction agree on every address).
pub fn driver_layout(cfg: &asymfence_common::config::MachineConfig) -> DequeLayout {
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    DequeLayout::new(&mut alloc, DRIVER_CAPACITY)
}

#[derive(Clone, Debug)]
enum DriverSt {
    Idle,
    Taking(Take),
    Stealing(Steal),
}

/// A minimal two-thread deque exerciser for fence-assignment synthesis:
/// the owner (`tid 0`) repeatedly pushes one task and takes one back; the
/// thief (`tid 1`) repeatedly steals. Always terminates — every `take` /
/// `steal` resolves to `Got` or `Empty` — so broken assignments surface
/// as SC violations or deadlocks, never as livelock.
#[derive(Clone, Debug)]
pub struct WsqDriver {
    tid: usize,
    deque: DequeLayout,
    rounds: u64,
    local_tail: u64,
    next_task: u64,
    rng: asymfence_common::rng::SimRng,
    ops: Ops,
    state: DriverSt,
    /// Tasks obtained (take or steal `Got`).
    pub got: u64,
}

impl WsqDriver {
    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, DriverSt::Idle) {
            DriverSt::Idle => {
                if self.rounds == 0 {
                    return false;
                }
                self.rounds -= 1;
                if self.tid == 0 {
                    self.next_task += 1;
                    self.local_tail = push(&self.deque, self.local_tail, self.next_task, &mut self.ops);
                    self.ops.compute(8 + self.rng.below(16));
                    let take =
                        Take::start_at(&self.deque, self.local_tail, &mut self.ops, owner_site());
                    self.state = DriverSt::Taking(take);
                } else {
                    self.ops.compute(40 + self.rng.below(60));
                    let steal = Steal::start_at(&self.deque, &mut self.ops, thief_site());
                    self.state = DriverSt::Stealing(steal);
                }
                true
            }
            DriverSt::Taking(mut take) => {
                match take.poll(&mut self.ops) {
                    None => self.state = DriverSt::Taking(take),
                    Some(TakeOutcome::Got { new_tail, .. }) => {
                        self.got += 1;
                        self.local_tail = new_tail;
                        self.state = DriverSt::Idle;
                    }
                    Some(TakeOutcome::Empty { new_tail }) => {
                        self.local_tail = new_tail;
                        self.state = DriverSt::Idle;
                    }
                }
                true
            }
            DriverSt::Stealing(mut steal) => {
                match steal.poll(&mut self.ops) {
                    None => self.state = DriverSt::Stealing(steal),
                    Some(StealOutcome::Got { .. }) => {
                        self.got += 1;
                        self.state = DriverSt::Idle;
                    }
                    Some(StealOutcome::Empty) => self.state = DriverSt::Idle,
                }
                true
            }
        }
    }
}

impl asymfence::prelude::ThreadProgram for WsqDriver {
    fn fetch(&mut self) -> asymfence::prelude::Fetch {
        loop {
            if let Some(f) = self.ops.poll() {
                return f;
            }
            if !self.step() {
                return asymfence::prelude::Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.ops.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn asymfence::prelude::ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "wsq-driver"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Builds the two driver threads (owner then thief).
pub fn driver_programs(
    cfg: &asymfence_common::config::MachineConfig,
    rounds: u64,
    seed: u64,
) -> Vec<Box<dyn asymfence::prelude::ThreadProgram>> {
    let layout = driver_layout(cfg);
    let mut root = asymfence_common::rng::SimRng::new(seed ^ 0x0575_0000);
    (0..2)
        .map(|tid| {
            Box::new(WsqDriver {
                tid,
                deque: layout.clone(),
                rounds,
                local_tail: 0,
                next_task: 0,
                rng: root.fork(tid as u64),
                ops: Ops::new(),
                state: DriverSt::Idle,
                got: 0,
            }) as Box<dyn asymfence::prelude::ThreadProgram>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::{Fetch, Instr};

    fn layout() -> DequeLayout {
        let mut alloc = AddressAllocator::new(32, 8);
        DequeLayout::new(&mut alloc, 8)
    }

    #[test]
    fn slots_wrap_at_capacity() {
        let d = layout();
        assert_eq!(d.slot(0), d.slot(8));
        assert_ne!(d.slot(0), d.slot(1));
        assert_eq!(d.capacity(), 8);
    }

    #[test]
    fn push_emits_slot_then_tail() {
        let d = layout();
        let mut ops = Ops::new();
        let nt = push(&d, 3, 77, &mut ops);
        assert_eq!(nt, 4);
        let is = collect_until_wait(&mut ops);
        assert!(matches!(is[0], Instr::Store { value: 77, .. }));
        assert!(matches!(is[1], Instr::Store { addr, value: 4 } if addr == d.tail));
    }

    #[test]
    fn take_fast_path_gets_task() {
        let d = layout();
        let mut ops = Ops::new();
        let mut take = Take::start(&d, 2, &mut ops);
        // Emits: store tail=1; fence(Critical); load head.
        let head_tag = ops.next_pending_tag().expect("head load pending");
        let is = collect_until_wait(&mut ops);
        assert!(matches!(is[0], Instr::Store { addr, value: 1 } if addr == d.tail));
        assert!(matches!(
            is[1],
            Instr::Fence {
                role: FenceRole::Critical,
                ..
            }
        ));
        ops.deliver(head_tag, 0); // head = 0 <= t = 1
        assert!(take.poll(&mut ops).is_none());
        let slot_tag = ops.next_pending_tag().expect("slot load");
        collect_until_wait(&mut ops);
        ops.deliver(slot_tag, 42);
        assert_eq!(
            take.poll(&mut ops),
            Some(TakeOutcome::Got {
                task: 42,
                new_tail: 1
            })
        );
    }

    #[test]
    fn take_conflict_path_locks_and_reports_empty() {
        let d = layout();
        let mut ops = Ops::new();
        let mut take = Take::start(&d, 1, &mut ops);
        let head_tag = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(head_tag, 1); // head = 1 > t = 0: conflict
        assert!(take.poll(&mut ops).is_none());
        let lock_tag = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(lock_tag, 0); // lock acquired
        assert!(take.poll(&mut ops).is_none());
        let head2 = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(head2, 1); // still gone
        assert_eq!(take.poll(&mut ops), Some(TakeOutcome::Empty { new_tail: 1 }));
    }

    #[test]
    fn steal_fails_on_empty_deque() {
        let d = layout();
        let mut ops = Ops::new();
        let mut steal = Steal::start(&d, &mut ops);
        let lock = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(lock, 0);
        assert!(steal.poll(&mut ops).is_none());
        let head = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(head, 0);
        assert!(steal.poll(&mut ops).is_none());
        let tail = ops.next_pending_tag().unwrap();
        let is = collect_until_wait(&mut ops);
        assert!(
            is.iter()
                .any(|i| matches!(i, Instr::Fence { role: FenceRole::NonCritical, .. })),
            "thief fence is non-critical"
        );
        ops.deliver(tail, 0); // head+1 = 1 > tail = 0: empty
        assert_eq!(steal.poll(&mut ops), Some(StealOutcome::Empty));
    }

    #[test]
    fn steal_succeeds_and_releases_lock() {
        let d = layout();
        let mut ops = Ops::new();
        let mut steal = Steal::start(&d, &mut ops);
        let lock = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(lock, 0);
        steal.poll(&mut ops);
        let head = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(head, 0);
        steal.poll(&mut ops);
        let tail = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(tail, 3); // 3 tasks available
        assert!(steal.poll(&mut ops).is_none());
        let slot = ops.next_pending_tag().unwrap();
        collect_until_wait(&mut ops);
        ops.deliver(slot, 99);
        assert_eq!(steal.poll(&mut ops), Some(StealOutcome::Got { task: 99 }));
        let is = collect_until_wait(&mut ops);
        assert!(
            is.iter()
                .any(|i| matches!(i, Instr::Store { addr, value: 0 } if *addr == d.lock)),
            "lock released"
        );
    }

    /// Pops emitted instructions until the queue blocks or empties.
    fn collect_until_wait(ops: &mut Ops) -> Vec<Instr> {
        let mut out = Vec::new();
        loop {
            match ops.poll() {
                Some(Fetch::Instr(i)) => out.push(i),
                Some(Fetch::Await) | Some(Fetch::Done) | None => return out,
            }
        }
    }
}
