//! The RSTM STM microbenchmarks (the paper's *ustm* group).
//!
//! Ten concurrent data structures exercised with the paper's mix — 50 %
//! lookups, 25 % inserts, 25 % deletes — over the TLRW substrate
//! ([`crate::tlrw`]). Each benchmark is a [`TxProfile`] whose location
//! pattern and read/write-set sizes model the structure: chains for
//! lists, root-to-leaf paths for trees, uniform picks for hash tables, a
//! single hot word for the counter.
//!
//! Performance is reported as transactional throughput (committed
//! transactions per simulated second), as in Figure 9.

use asymfence::prelude::ThreadProgram;
use asymfence_common::config::MachineConfig;

use crate::tlrw::{self, AccessPattern, TxClass, TxProfile};

/// The ten ustm microbenchmarks, in the paper's Figure 9 order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum UstmBench {
    Counter,
    DList,
    Forest,
    Hash,
    List,
    Mcas,
    ReadNWrite1,
    ReadWriteN,
    Tree,
    TreeOverwrite,
}

impl UstmBench {
    /// All benchmarks, in Figure 9's order.
    pub const ALL: [UstmBench; 10] = [
        UstmBench::Counter,
        UstmBench::DList,
        UstmBench::Forest,
        UstmBench::Hash,
        UstmBench::List,
        UstmBench::Mcas,
        UstmBench::ReadNWrite1,
        UstmBench::ReadWriteN,
        UstmBench::Tree,
        UstmBench::TreeOverwrite,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            UstmBench::Counter => "Counter",
            UstmBench::DList => "DList",
            UstmBench::Forest => "Forest",
            UstmBench::Hash => "Hash",
            UstmBench::List => "List",
            UstmBench::Mcas => "MCAS",
            UstmBench::ReadNWrite1 => "ReadNWrite1",
            UstmBench::ReadWriteN => "ReadWriteN",
            UstmBench::Tree => "Tree",
            UstmBench::TreeOverwrite => "TreeOverwrite",
        }
    }

    /// The 50/25/25 lookup/insert/delete mix with structure-specific
    /// read/write-set sizes.
    fn mix(lookup_reads: (u64, u64), upd_reads: (u64, u64), upd_writes: (u64, u64)) -> Vec<TxClass> {
        vec![
            TxClass {
                weight: 2, // 50% lookups
                reads: lookup_reads,
                writes: (0, 0),
            },
            TxClass {
                weight: 1, // 25% inserts
                reads: upd_reads,
                writes: upd_writes,
            },
            TxClass {
                weight: 1, // 25% deletes
                reads: upd_reads,
                writes: upd_writes,
            },
        ]
    }

    /// The benchmark's TLRW profile.
    pub fn profile(self) -> TxProfile {
        let (locations, pattern, classes) = match self {
            // Pure increments: write-lock the single word (a read lock
            // would self-upgrade and deadlock against other readers).
            UstmBench::Counter => (
                2,
                AccessPattern::Hotspot,
                vec![TxClass {
                    weight: 1,
                    reads: (0, 0),
                    writes: (1, 1),
                }],
            ),
            UstmBench::DList => (
                64,
                AccessPattern::Chain,
                Self::mix((3, 8), (3, 8), (2, 3)),
            ),
            UstmBench::Forest => (
                256,
                AccessPattern::TreePath,
                Self::mix((5, 9), (5, 9), (1, 3)),
            ),
            UstmBench::Hash => (
                256,
                AccessPattern::Random,
                Self::mix((1, 2), (1, 2), (1, 1)),
            ),
            UstmBench::List => (
                192,
                AccessPattern::Chain,
                Self::mix((5, 14), (5, 14), (1, 2)),
            ),
            UstmBench::Mcas => (
                128,
                AccessPattern::Random,
                vec![TxClass {
                    weight: 1,
                    reads: (4, 8),
                    writes: (4, 8),
                }],
            ),
            UstmBench::ReadNWrite1 => (
                256,
                AccessPattern::Random,
                vec![TxClass {
                    weight: 1,
                    reads: (8, 16),
                    writes: (1, 1),
                }],
            ),
            UstmBench::ReadWriteN => (
                256,
                AccessPattern::Random,
                vec![TxClass {
                    weight: 1,
                    reads: (6, 12),
                    writes: (6, 12),
                }],
            ),
            UstmBench::Tree => (
                512,
                AccessPattern::TreePath,
                Self::mix((7, 10), (7, 10), (1, 2)),
            ),
            UstmBench::TreeOverwrite => (
                512,
                AccessPattern::TreePath,
                Self::mix((7, 10), (7, 10), (3, 6)),
            ),
        };
        TxProfile {
            name: self.name(),
            locations,
            pattern,
            classes,
            // Almost no app compute: these microbenchmarks are pure
            // data-structure operations and synchronization-bound (the
            // paper measures ~54% of time in fence stall under S+).
            inter_tx_compute: (120, 320),
            intra_op_compute: (60, 200),
        }
    }
}

/// Builds the per-core programs for one microbenchmark. Pass
/// `target_commits = None` for throughput runs (Figure 9 measures
/// committed transactions in a fixed window).
pub fn programs(
    bench: UstmBench,
    cfg: &MachineConfig,
    seed: u64,
    target_commits: Option<u64>,
) -> Vec<Box<dyn ThreadProgram>> {
    tlrw::programs(&bench.profile(), cfg, seed ^ (bench as u64) << 8, target_commits)
}

/// Installs the benchmark on a machine with warmed metadata (preferred).
pub fn install(
    m: &mut asymfence::Machine,
    bench: UstmBench,
    seed: u64,
    target_commits: Option<u64>,
) {
    tlrw::install(m, &bench.profile(), seed ^ (bench as u64) << 8, target_commits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;
    use crate::tlrw::tally;

    #[test]
    fn all_names_unique() {
        let mut names: Vec<&str> = UstmBench::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn lookup_mix_is_50_25_25() {
        let p = UstmBench::Hash.profile();
        let weights: Vec<u64> = p.classes.iter().map(|c| c.weight).collect();
        assert_eq!(weights, vec![2, 1, 1]);
        assert_eq!(p.classes[0].writes, (0, 0), "lookups never write");
    }

    #[test]
    fn counter_is_a_single_hot_word() {
        let p = UstmBench::Counter.profile();
        assert_eq!(p.pattern, AccessPattern::Hotspot);
        assert_eq!(p.classes.len(), 1);
    }

    #[test]
    fn every_bench_commits_transactions() {
        let cfg = MachineConfig::builder().cores(2).build();
        for b in UstmBench::ALL {
            let mut m = Machine::new(&cfg);
            for p in programs(b, &cfg, 5, None) {
                m.add_thread(p);
            }
            m.run(400_000);
            let (commits, _) = tally(&m);
            assert!(commits > 0, "{} committed nothing", b.name());
        }
    }
}
