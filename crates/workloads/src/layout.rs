//! Shared-memory layout helper.
//!
//! Workloads carve the simulated address space with an [`AddressAllocator`]
//! so variables land where they should: lock words on their own line
//! (unless false sharing is the point), per-thread scratch regions far
//! apart, arrays line-aligned.

use asymfence::prelude::Addr;

/// Bump allocator over the simulated address space.
///
/// # Examples
///
/// ```
/// use asymfence_workloads::layout::AddressAllocator;
/// let mut a = AddressAllocator::new(32, 8);
/// let w1 = a.word();
/// let w2 = a.word();
/// assert_eq!(w2.raw() - w1.raw(), 8);
/// let l = a.isolated_word();
/// assert_eq!(l.raw() % 32, 0, "isolated words start a fresh line");
/// ```
#[derive(Clone, Debug)]
pub struct AddressAllocator {
    next: u64,
    line_bytes: u64,
    word_bytes: u64,
}

impl AddressAllocator {
    /// Creates an allocator for the given geometry, starting at address 0.
    ///
    /// # Panics
    ///
    /// Panics if the sizes are zero or the word exceeds the line.
    pub fn new(line_bytes: u64, word_bytes: u64) -> Self {
        assert!(word_bytes > 0 && line_bytes >= word_bytes);
        AddressAllocator {
            next: 0,
            line_bytes,
            word_bytes,
        }
    }

    /// Next free address (for diagnostics).
    pub fn watermark(&self) -> Addr {
        Addr::new(self.next)
    }

    /// Allocates one word.
    pub fn word(&mut self) -> Addr {
        let a = self.next;
        self.next += self.word_bytes;
        Addr::new(a)
    }

    /// Aligns to the start of the next line.
    pub fn align_line(&mut self) {
        self.next = self.next.next_multiple_of(self.line_bytes);
    }

    /// Aligns to an arbitrary power-of-two-or-not boundary (e.g. the
    /// directory-interleave chunk, so an arena lands in one bank).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn align_to(&mut self, bytes: u64) {
        assert!(bytes > 0);
        self.next = self.next.next_multiple_of(bytes);
    }

    /// Allocates one word on its own cache line (no false sharing).
    pub fn isolated_word(&mut self) -> Addr {
        self.align_line();
        let a = self.word();
        self.align_line();
        a
    }

    /// Allocates `words` consecutive words, line-aligned at the start.
    pub fn array(&mut self, words: u64) -> Addr {
        self.align_line();
        let a = self.next;
        self.next += words * self.word_bytes;
        self.align_line();
        Addr::new(a)
    }

    /// Allocates a byte region, line-aligned on both ends.
    pub fn region(&mut self, bytes: u64) -> Addr {
        self.align_line();
        let a = self.next;
        self.next += bytes;
        self.align_line();
        Addr::new(a)
    }
}

/// A circular scratch region a thread streams stores through. Sized well
/// above the L1 so every pass misses (the paper's "write buffer full of
/// misses" scenario that makes conventional fences expensive).
#[derive(Clone, Debug)]
pub struct Scratch {
    base: Addr,
    words: u64,
    cursor: u64,
    stride_words: u64,
}

impl Scratch {
    /// Creates a scratch walker over `bytes` at `base`, touching one word
    /// per line (maximum miss rate — scattered application writes).
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one line.
    pub fn new(base: Addr, bytes: u64, line_bytes: u64, word_bytes: u64) -> Self {
        assert!(bytes >= line_bytes);
        Scratch {
            base,
            words: bytes / word_bytes,
            cursor: 0,
            stride_words: line_bytes / word_bytes,
        }
    }

    /// Creates a sequential walker touching every word (log buffers: one
    /// miss per line, the rest of the line hits).
    ///
    /// # Panics
    ///
    /// Panics if the region is smaller than one word.
    pub fn sequential(base: Addr, bytes: u64, word_bytes: u64) -> Self {
        assert!(bytes >= word_bytes);
        Scratch {
            base,
            words: bytes / word_bytes,
            cursor: 0,
            stride_words: 1,
        }
    }

    /// Next address in the walk.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Addr {
        let a = self.base.offset(self.cursor * 8);
        self.cursor = (self.cursor + self.stride_words) % self.words;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_consecutive() {
        let mut a = AddressAllocator::new(32, 8);
        assert_eq!(a.word().raw(), 0);
        assert_eq!(a.word().raw(), 8);
        assert_eq!(a.word().raw(), 16);
    }

    #[test]
    fn isolated_words_never_share_lines() {
        let mut a = AddressAllocator::new(32, 8);
        let w1 = a.isolated_word();
        let w2 = a.isolated_word();
        assert_ne!(w1.raw() / 32, w2.raw() / 32);
    }

    #[test]
    fn arrays_are_line_aligned() {
        let mut a = AddressAllocator::new(32, 8);
        let _ = a.word();
        let arr = a.array(10);
        assert_eq!(arr.raw() % 32, 0);
        let after = a.word();
        assert!(after.raw() >= arr.raw() + 80);
        assert_eq!(after.raw() % 32, 0);
    }

    #[test]
    fn sequential_scratch_touches_every_word() {
        let mut s = Scratch::sequential(Addr::new(0x100), 32, 8);
        let seq: Vec<u64> = (0..5).map(|_| s.next().raw()).collect();
        assert_eq!(seq, vec![0x100, 0x108, 0x110, 0x118, 0x100]);
    }

    #[test]
    fn scratch_walks_one_word_per_line_and_wraps() {
        let base = Addr::new(0x1000);
        let mut s = Scratch::new(base, 128, 32, 8); // 4 lines
        let seq: Vec<u64> = (0..5).map(|_| s.next().raw()).collect();
        assert_eq!(seq, vec![0x1000, 0x1020, 0x1040, 0x1060, 0x1000]);
    }
}
