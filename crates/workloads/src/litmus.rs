//! Litmus programs reproducing the paper's figures.
//!
//! Each builder returns ready-to-install thread programs plus the
//! register files holding the observed values, so tests, examples and
//! the experiment harness can check SC outcomes, deadlock behaviour, and
//! Order/Conditional-Order resolution. The programs are made
//! timing-robust the same way as the cpu-crate tests: a warming load so
//! the critical post-fence load is an L1 hit, and a cold "dummy" store
//! that keeps the write buffer busy while the fence group forms.

use asymfence::prelude::{Addr, FenceRole, FenceSite, Instr, Registers, ScriptProgram, ThreadProgram};

/// Programs plus their observation registers.
pub type LitmusSetup = (Vec<Box<dyn ThreadProgram>>, Vec<Registers>);

/// Tag under which every litmus thread records its final read.
pub const OBSERVED: u64 = 1;

const SPIN: u64 = 1600;

fn side(mine: Addr, other: Addr, dummy: Addr, fence: Option<(FenceSite, FenceRole)>) -> Vec<Instr> {
    let mut v = vec![
        Instr::Load { addr: other, tag: None }, // warm the observed line
        Instr::Compute { cycles: SPIN },
        Instr::Store { addr: dummy, value: 1 }, // cold: holds the WB ~200 cycles
        Instr::Store { addr: mine, value: 1 },
    ];
    if let Some((site, role)) = fence {
        v.push(Instr::fence_at(site, role));
    }
    v.push(Instr::Load {
        addr: other,
        tag: Some(OBSERVED),
    });
    v
}

fn dummy(i: usize) -> Addr {
    Addr::new(0x4000 + 0x100 * i as u64)
}

/// Store-buffering (Dekker) litmus, Figure 1d: two threads, crossed
/// store→fence→load. Without fences TSO allows both threads to read 0;
/// with fences that outcome is an SCV and must not occur.
pub fn store_buffering(fences: Option<(FenceRole, FenceRole)>) -> LitmusSetup {
    let x = Addr::new(0x00);
    let y = Addr::new(0x40);
    let (fa, fb) = match fences {
        Some((a, b)) => (Some((FenceSite(0), a)), Some((FenceSite(1), b))),
        None => (None, None),
    };
    let (pa, ra) = ScriptProgram::new(side(x, y, dummy(0), fa));
    let (pb, rb) = ScriptProgram::new(side(y, x, dummy(1), fb));
    (vec![Box::new(pa), Box::new(pb)], vec![ra, rb])
}

/// Three-thread cycle, Figures 1e/1f and 3c:
/// `P0: wr x; F; rd y | P1: wr y; F; rd z | P2: wr z; F; rd x`.
/// The all-read-0 outcome is the SCV.
pub fn three_thread_cycle(roles: [FenceRole; 3]) -> LitmusSetup {
    let x = Addr::new(0x00);
    let y = Addr::new(0x40);
    let z = Addr::new(0x80);
    let mk = |mine, other, i: usize, role| {
        ScriptProgram::new(side(mine, other, dummy(i), Some((FenceSite(i as u32), role))))
    };
    let (p0, r0) = mk(x, y, 0, roles[0]);
    let (p1, r1) = mk(y, z, 1, roles[1]);
    let (p2, r2) = mk(z, x, 2, roles[2]);
    (
        vec![Box::new(p0), Box::new(p1), Box::new(p2)],
        vec![r0, r1, r2],
    )
}

/// Figure 4b: two *unrelated* weak fences whose accesses falsely share
/// cache lines (each thread writes word 0 of a line and reads word 1 of
/// the other's line). WS+/SW+ must resolve the bounce cycle with an
/// Order / Conditional Order; an unprotected design deadlocks.
pub fn false_sharing_pair(role_a: FenceRole, role_b: FenceRole) -> LitmusSetup {
    let x = Addr::new(0x00);
    let x2 = Addr::new(0x08); // same line as x
    let y = Addr::new(0x40);
    let y2 = Addr::new(0x48); // same line as y
    let (pa, ra) = ScriptProgram::new(side(x, y2, dummy(0), Some((FenceSite(0), role_a))));
    let (pb, rb) = ScriptProgram::new(side(y, x2, dummy(1), Some((FenceSite(1), role_b))));
    (vec![Box::new(pa), Box::new(pb)], vec![ra, rb])
}

/// Message passing: `P0: wr data; wr flag | P1: rd flag; rd data`.
/// Needs no fences under TSO (no store-store or load-load reordering):
/// if `flag` is observed as 1, `data` must be 1. P1 re-reads the flag a
/// few times to give P0 time to publish.
pub fn message_passing() -> LitmusSetup {
    let data = Addr::new(0x00);
    let flag = Addr::new(0x40);
    let (p0, r0) = ScriptProgram::new(vec![
        Instr::Store { addr: data, value: 1 },
        Instr::Store { addr: flag, value: 1 },
        Instr::Load {
            addr: data,
            tag: Some(OBSERVED),
        },
    ]);
    let mut i1 = Vec::new();
    for k in 0..40 {
        i1.push(Instr::Load {
            addr: flag,
            tag: Some(100 + k),
        });
        i1.push(Instr::Compute { cycles: 20 });
    }
    i1.push(Instr::Load {
        addr: flag,
        tag: Some(2),
    });
    i1.push(Instr::Load {
        addr: data,
        tag: Some(OBSERVED),
    });
    let (p1, r1) = ScriptProgram::new(i1);
    (vec![Box::new(p0), Box::new(p1)], vec![r0, r1])
}

/// Message passing with fences: `P0: wr data; F; wr flag | P1: rd flag;
/// F; rd data`. Redundant under TSO (which already orders both pairs),
/// so the fenced variant must stay SC under every design — it pins the
/// "fences never weaken an already-SC program" direction.
pub fn message_passing_fenced(role_a: FenceRole, role_b: FenceRole) -> LitmusSetup {
    let data = Addr::new(0x00);
    let flag = Addr::new(0x40);
    let (p0, r0) = ScriptProgram::new(vec![
        Instr::Store { addr: data, value: 1 },
        Instr::fence_at(FenceSite(0), role_a),
        Instr::Store { addr: flag, value: 1 },
        Instr::Load {
            addr: data,
            tag: Some(OBSERVED),
        },
    ]);
    let (p1, r1) = ScriptProgram::new(vec![
        Instr::Load {
            addr: flag,
            tag: Some(2),
        },
        Instr::fence_at(FenceSite(1), role_b),
        Instr::Load {
            addr: data,
            tag: Some(OBSERVED),
        },
    ]);
    (vec![Box::new(p0), Box::new(p1)], vec![r0, r1])
}

/// Load buffering: `P0: rd y; wr x | P1: rd x; wr y`. The both-loads-
/// see-1 outcome needs load→store reordering, which TSO forbids — SC
/// without any fences.
pub fn load_buffering() -> LitmusSetup {
    let x = Addr::new(0x00);
    let y = Addr::new(0x40);
    let mk = |other, mine| {
        ScriptProgram::new(vec![
            Instr::Load {
                addr: other,
                tag: Some(OBSERVED),
            },
            Instr::Store { addr: mine, value: 1 },
        ])
    };
    let (p0, r0) = mk(y, x);
    let (p1, r1) = mk(x, y);
    (vec![Box::new(p0), Box::new(p1)], vec![r0, r1])
}

/// Independent reads of independent writes: two writers, two readers
/// observing in opposite orders. Invalidation-based coherence is
/// single-copy atomic, so the readers can never disagree on the write
/// order (`r2: x=1,y=0` with `r3: y=1,x=0` is forbidden) — SC without
/// fences.
pub fn iriw() -> LitmusSetup {
    let x = Addr::new(0x00);
    let y = Addr::new(0x40);
    let writer = |addr| ScriptProgram::new(vec![Instr::Store { addr, value: 1 }]);
    let reader = |first, second| {
        ScriptProgram::new(vec![
            Instr::Load {
                addr: first,
                tag: Some(OBSERVED),
            },
            Instr::Load {
                addr: second,
                tag: Some(2),
            },
        ])
    };
    let (w0, rw0) = writer(x);
    let (w1, rw1) = writer(y);
    let (r0, rr0) = reader(x, y);
    let (r1, rr1) = reader(y, x);
    (
        vec![Box::new(w0), Box::new(w1), Box::new(r0), Box::new(r1)],
        vec![rw0, rw1, rr0, rr1],
    )
}

/// Reads the value a litmus thread observed.
pub fn observed(regs: &Registers) -> u64 {
    *regs.borrow().get(&OBSERVED).unwrap_or(&u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    fn run(design: FenceDesign, setup: LitmusSetup, max: u64) -> (RunOutcome, Vec<u64>) {
        let cfg = MachineConfig::builder()
            .cores(setup.0.len().max(2))
            .fence_design(design)
            .watchdog_cycles(20_000)
            .record_scv_log(true)
            .build();
        let mut m = Machine::new(&cfg);
        let (progs, regs) = setup;
        for p in progs {
            m.add_thread(p);
        }
        let outcome = m.run(max);
        if outcome == RunOutcome::Finished {
            let log = m.scv_log().expect("log enabled");
            assert!(
                !scv::has_violation(log),
                "{design}: fenced litmus must stay SC:\n{}",
                scv::describe_cycle(log, &scv::find_cycle(log).unwrap())
            );
        }
        (outcome, regs.iter().map(observed).collect())
    }

    #[test]
    fn sb_unfenced_reorders_and_checker_sees_it() {
        let cfg = MachineConfig::builder()
            .cores(2)
            .record_scv_log(true)
            .build();
        let mut m = Machine::new(&cfg);
        let (progs, regs) = store_buffering(None);
        for p in progs {
            m.add_thread(p);
        }
        assert_eq!(m.run(10_000_000), RunOutcome::Finished);
        assert_eq!(
            regs.iter().map(observed).collect::<Vec<_>>(),
            vec![0, 0],
            "TSO store buffering"
        );
        assert!(
            scv::has_violation(m.scv_log().unwrap()),
            "the checker must flag the unfenced reorder"
        );
    }

    #[test]
    fn sb_fenced_is_sc_under_all_designs() {
        use FenceRole::{Critical, NonCritical};
        for design in [
            FenceDesign::SPlus,
            FenceDesign::WsPlus,
            FenceDesign::SwPlus,
            FenceDesign::WPlus,
            FenceDesign::Wee,
        ] {
            let (outcome, vals) = run(
                design,
                store_buffering(Some((Critical, NonCritical))),
                20_000_000,
            );
            assert_eq!(outcome, RunOutcome::Finished, "{design}");
            assert_ne!(vals, vec![0, 0], "{design} forbids the SCV outcome");
        }
    }

    #[test]
    fn three_thread_group_with_one_strong_fence_is_safe() {
        // Figure 3c: two weak fences plus one conventional fence.
        use FenceRole::{Critical, NonCritical};
        for design in [FenceDesign::WsPlus, FenceDesign::SwPlus] {
            let roles = if design == FenceDesign::WsPlus {
                // WS+ assumes at most one wf per group.
                [Critical, NonCritical, NonCritical]
            } else {
                [Critical, Critical, NonCritical]
            };
            let (outcome, vals) = run(design, three_thread_cycle(roles), 40_000_000);
            assert_eq!(outcome, RunOutcome::Finished, "{design}");
            assert_ne!(vals, vec![0, 0, 0], "{design} prevents the 3-cycle");
        }
    }

    #[test]
    fn three_thread_group_all_weak_under_w_plus_recovers() {
        use FenceRole::Critical;
        let (outcome, vals) = run(
            FenceDesign::WPlus,
            three_thread_cycle([Critical; 3]),
            40_000_000,
        );
        assert_eq!(outcome, RunOutcome::Finished);
        assert_ne!(vals, vec![0, 0, 0]);
    }

    #[test]
    fn false_sharing_resolved_by_order_ops() {
        use FenceRole::Critical;
        for design in [FenceDesign::WsPlus, FenceDesign::SwPlus, FenceDesign::WPlus] {
            let (outcome, _) = run(
                design,
                false_sharing_pair(Critical, Critical),
                40_000_000,
            );
            assert_eq!(outcome, RunOutcome::Finished, "{design}");
        }
    }

    #[test]
    fn false_sharing_deadlocks_unprotected_design() {
        use FenceRole::Critical;
        let (outcome, _) = run(
            FenceDesign::WfOnlyUnsafe,
            false_sharing_pair(Critical, Critical),
            10_000_000,
        );
        assert_eq!(outcome, RunOutcome::Deadlocked);
    }

    #[test]
    fn message_passing_respects_tso_without_fences() {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        let (progs, regs) = message_passing();
        for p in progs {
            m.add_thread(p);
        }
        assert_eq!(m.run(10_000_000), RunOutcome::Finished);
        let flag_seen = *regs[1].borrow().get(&2).unwrap();
        if flag_seen == 1 {
            assert_eq!(observed(&regs[1]), 1, "flag=1 implies data=1 under TSO");
        }
    }
}
