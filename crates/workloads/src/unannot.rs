//! Unannotated kernel builders: the five `sites` study kernels plus
//! Peterson, with every hand-placed fence removed.
//!
//! This is the analyzer's input surface. Each [`InferredKernel`] builds
//! the *same* protocol threads as its annotated counterpart — same
//! layouts, same iteration counts, same seeds — but fence-free:
//! kernels with annotated builders are wrapped in
//! [`StripFences`], kernels with a
//! fence toggle use it, and [`peterson`] is born
//! unannotated. Cycle costs measured over an inferred placement are
//! therefore directly comparable with the hand annotation's.

use asymfence::cpu::insert::StripFences;
use asymfence::prelude::ThreadProgram;
use asymfence_common::config::MachineConfig;

use crate::peterson::PETERSON_ITERS;
use crate::sites::{SiteBench, BAKERY_ITERS, DCL_ITERS, DEKKER_ITERS, WSQ_ROUNDS};
use crate::{bakery, dcl, dekker, litmus, peterson, wsq};

/// A kernel the analyzer can consume with zero hand annotations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InferredKernel {
    /// Two-thread store buffering (the paper's headline litmus).
    Sb,
    /// Dekker mutual exclusion, fences stripped.
    Dekker,
    /// Double-checked locking, built in its unfenced variant.
    Dcl,
    /// THE work-stealing deque owner/thief driver, fences stripped.
    Wsq,
    /// Three-thread Lamport bakery, fences stripped.
    Bakery,
    /// Peterson's lock — never had fences to strip.
    Peterson,
}

impl InferredKernel {
    /// Every kernel, in report order.
    pub const ALL: [InferredKernel; 6] = [
        InferredKernel::Sb,
        InferredKernel::Dekker,
        InferredKernel::Dcl,
        InferredKernel::Wsq,
        InferredKernel::Bakery,
        InferredKernel::Peterson,
    ];

    /// Stable kernel name (CLI filter key, report row).
    pub fn name(self) -> &'static str {
        match self {
            InferredKernel::Sb => "sb",
            InferredKernel::Dekker => "dekker",
            InferredKernel::Dcl => "dcl",
            InferredKernel::Wsq => "wsq",
            InferredKernel::Bakery => "bakery",
            InferredKernel::Peterson => "peterson",
        }
    }

    /// Parses a kernel name.
    pub fn from_name(name: &str) -> Option<InferredKernel> {
        InferredKernel::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Cores/threads the kernel needs.
    pub fn cores(self) -> usize {
        match self {
            InferredKernel::Bakery => 3,
            _ => 2,
        }
    }

    /// The hand-annotated twin, if one exists (Peterson has none —
    /// that is the acid test).
    pub fn site_bench(self) -> Option<SiteBench> {
        match self {
            InferredKernel::Sb => Some(SiteBench::Sb),
            InferredKernel::Dekker => Some(SiteBench::Dekker),
            InferredKernel::Dcl => Some(SiteBench::Dcl),
            InferredKernel::Wsq => Some(SiteBench::Wsq),
            InferredKernel::Bakery => Some(SiteBench::Bakery),
            InferredKernel::Peterson => None,
        }
    }

    /// Builds the fence-free threads (same shapes and seeds as the
    /// annotated builders).
    pub fn programs(self, cfg: &MachineConfig, seed: u64) -> Vec<Box<dyn ThreadProgram>> {
        let strip = |ps: Vec<Box<dyn ThreadProgram>>| -> Vec<Box<dyn ThreadProgram>> {
            ps.into_iter()
                .map(|p| Box::new(StripFences::new(p)) as Box<dyn ThreadProgram>)
                .collect()
        };
        match self {
            InferredKernel::Sb => litmus::store_buffering(None).0,
            InferredKernel::Dekker => strip(dekker::programs(cfg, DEKKER_ITERS, seed)),
            InferredKernel::Dcl => dcl::programs(cfg, false, DCL_ITERS, seed),
            InferredKernel::Wsq => strip(wsq::driver_programs(cfg, WSQ_ROUNDS, seed)),
            InferredKernel::Bakery => strip(bakery::programs(
                cfg,
                bakery::RoleAssign::PriorityThread0,
                BAKERY_ITERS,
                seed,
            )),
            InferredKernel::Peterson => peterson::programs(cfg, PETERSON_ITERS, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    #[test]
    fn names_round_trip() {
        for k in InferredKernel::ALL {
            assert_eq!(InferredKernel::from_name(k.name()), Some(k));
        }
        assert_eq!(InferredKernel::from_name("nope"), None);
    }

    #[test]
    fn twins_cover_all_site_benches() {
        let twins: Vec<SiteBench> = InferredKernel::ALL
            .iter()
            .filter_map(|k| k.site_bench())
            .collect();
        assert_eq!(twins.len(), SiteBench::ALL.len());
        for b in SiteBench::ALL {
            assert!(twins.contains(&b), "{} has no unannotated twin", b.name());
        }
    }

    #[test]
    fn every_kernel_builds_and_completes_unfenced() {
        for k in InferredKernel::ALL {
            let cfg = MachineConfig::builder()
                .cores(k.cores())
                .fence_design(FenceDesign::SPlus)
                .build();
            let mut m = Machine::new(&cfg);
            for p in k.programs(&cfg, 7) {
                m.add_thread(p);
            }
            assert_eq!(
                m.run(400_000_000),
                RunOutcome::Finished,
                "{} must finish without fences",
                k.name()
            );
        }
    }

    #[test]
    fn core_counts_match_twins() {
        for k in InferredKernel::ALL {
            if let Some(b) = k.site_bench() {
                assert_eq!(k.cores(), b.cores(), "{}", k.name());
            }
        }
    }
}
