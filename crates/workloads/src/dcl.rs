//! Double-checked locking (paper §4.4, [Schmidt & Harrison '96]).
//!
//! The classic lazy-initialization idiom: readers check an `initialized`
//! flag without the lock; on the slow path they take a lock, re-check,
//! and initialize. Under relaxed models the idiom is famously broken
//! without fences (a reader can observe `initialized = 1` but stale
//! payload). Under **TSO** the publication side is safe without any fence
//! (stores are not reordered with stores), and the reader side is safe
//! because loads are not reordered with loads — this module demonstrates
//! both, and also provides the *fenced* variant the paper's asymmetric
//! designs would accelerate on weaker models (readers `Critical`,
//! initializer `NonCritical`).

use asymfence::prelude::{Addr, Fetch, FenceRole, FenceSite, RmwKind, ThreadProgram};
use asymfence_common::config::MachineConfig;
use asymfence_common::rng::SimRng;

use crate::layout::AddressAllocator;
use crate::ops::{Ops, Tag};

/// The payload value the initializer publishes.
pub const MAGIC: u64 = 0xC0FF_EE00_DEAD_BEEF;

/// Shared words of the lazily initialized object.
#[derive(Clone, Debug)]
pub struct DclLayout {
    /// Payload words (all must read [`MAGIC`] once initialized).
    pub payload: [Addr; 3],
    /// The published flag.
    pub initialized: Addr,
    /// Initialization lock.
    pub lock: Addr,
}

impl DclLayout {
    /// Allocates the object; payload and flag live on separate lines.
    pub fn new(alloc: &mut AddressAllocator) -> Self {
        DclLayout {
            payload: [
                alloc.isolated_word(),
                alloc.isolated_word(),
                alloc.isolated_word(),
            ],
            initialized: alloc.isolated_word(),
            lock: alloc.isolated_word(),
        }
    }
}

#[derive(Clone, Debug)]
enum DclSt {
    Start,
    FirstCheck { tag: Tag },
    LockSpin { tag: Tag },
    SecondCheck { tag: Tag },
    ReadPayload { tags: Vec<Tag> },
    Finished,
}

/// A thread performing `iterations` lazy accesses to the shared object.
#[derive(Clone)]
pub struct DclThread {
    tid: usize,
    layout: DclLayout,
    fenced: bool,
    iterations: u64,
    rng: SimRng,
    ops: Ops,
    state: DclSt,
    holding_lock: bool,
    /// Accesses that found the object initialized.
    pub fast_hits: u64,
    /// Times this thread performed the initialization.
    pub initialized_by_me: u64,
    /// Payload words observed torn (≠ [`MAGIC`] after the flag read 1).
    pub torn_reads: u64,
}

impl DclThread {
    fn new(
        tid: usize,
        layout: DclLayout,
        fenced: bool,
        iterations: u64,
        rng: SimRng,
    ) -> Self {
        DclThread {
            tid,
            layout,
            fenced,
            iterations,
            rng,
            ops: Ops::new(),
            state: DclSt::Start,
            holding_lock: false,
            fast_hits: 0,
            initialized_by_me: 0,
            torn_reads: 0,
        }
    }

    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, DclSt::Finished) {
            DclSt::Start => {
                if self.iterations == 0 {
                    self.state = DclSt::Finished;
                    return false;
                }
                self.iterations -= 1;
                self.ops.compute(30 + self.rng.below(60));
                let tag = self.ops.load(self.layout.initialized);
                self.state = DclSt::FirstCheck { tag };
                true
            }
            DclSt::FirstCheck { tag } => {
                if self.ops.take(tag) != 0 {
                    self.fast_hits += 1;
                    if self.fenced {
                        // On weaker-than-TSO models the reader needs an
                        // acquire fence here; readers are the hot side.
                        self.ops
                            .fence_at(reader_site(self.tid), FenceRole::Critical);
                    }
                    let tags = self
                        .layout
                        .payload
                        .iter()
                        .map(|a| self.ops.load(*a))
                        .collect();
                    self.state = DclSt::ReadPayload { tags };
                } else {
                    let tag = self
                        .ops
                        .rmw(self.layout.lock, RmwKind::Cas { expect: 0, new: 1 });
                    self.state = DclSt::LockSpin { tag };
                }
                true
            }
            DclSt::LockSpin { tag } => {
                if self.ops.take(tag) != 0 {
                    self.ops.compute(25 + self.rng.below(25));
                    let tag = self
                        .ops
                        .rmw(self.layout.lock, RmwKind::Cas { expect: 0, new: 1 });
                    self.state = DclSt::LockSpin { tag };
                } else {
                    self.holding_lock = true;
                    let tag = self.ops.load(self.layout.initialized);
                    self.state = DclSt::SecondCheck { tag };
                }
                true
            }
            DclSt::SecondCheck { tag } => {
                if self.ops.take(tag) == 0 {
                    // Initialize: payload first, then publish the flag.
                    for a in self.layout.payload {
                        self.ops.store(a, MAGIC);
                    }
                    if self.fenced {
                        // Release fence before publication (needed on
                        // models weaker than TSO; rare path).
                        self.ops
                            .fence_at(init_site(self.tid), FenceRole::NonCritical);
                    }
                    self.ops.store(self.layout.initialized, 1);
                    self.initialized_by_me += 1;
                }
                self.ops.store(self.layout.lock, 0);
                self.holding_lock = false;
                let tags = self
                    .layout
                    .payload
                    .iter()
                    .map(|a| self.ops.load(*a))
                    .collect();
                self.state = DclSt::ReadPayload { tags };
                true
            }
            DclSt::ReadPayload { tags } => {
                for t in tags {
                    if self.ops.take(t) != MAGIC {
                        self.torn_reads += 1;
                    }
                }
                self.state = DclSt::Start;
                true
            }
            DclSt::Finished => false,
        }
    }
}

impl std::fmt::Debug for DclThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DclThread")
            .field("tid", &self.tid)
            .field("fast_hits", &self.fast_hits)
            .field("torn_reads", &self.torn_reads)
            .finish()
    }
}

impl ThreadProgram for DclThread {
    fn fetch(&mut self) -> Fetch {
        loop {
            if let Some(f) = self.ops.poll() {
                return f;
            }
            if !self.step() {
                return Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.ops.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "dcl"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The reader-side (acquire) fence site of thread `tid`.
pub fn reader_site(tid: usize) -> FenceSite {
    FenceSite(2 * tid as u32)
}

/// The initializer-side (release) fence site of thread `tid`.
pub fn init_site(tid: usize) -> FenceSite {
    FenceSite(2 * tid as u32 + 1)
}

/// Builds the DCL threads. `fenced = false` demonstrates TSO's natural
/// safety of the idiom; `fenced = true` is the weaker-model placement.
pub fn programs(
    cfg: &MachineConfig,
    fenced: bool,
    iterations: u64,
    seed: u64,
) -> Vec<Box<dyn ThreadProgram>> {
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    let layout = DclLayout::new(&mut alloc);
    let mut root = SimRng::new(seed ^ 0xDC1);
    (0..cfg.num_cores)
        .map(|tid| {
            Box::new(DclThread::new(
                tid,
                layout.clone(),
                fenced,
                iterations,
                root.fork(tid as u64),
            )) as Box<dyn ThreadProgram>
        })
        .collect()
}

/// Sums `(fast_hits, inits, torn_reads)` over the machine's DCL threads.
pub fn tally(m: &asymfence::Machine) -> (u64, u64, u64) {
    let (mut fast, mut inits, mut torn) = (0, 0, 0);
    for i in 0..m.config().num_cores {
        if let Some(p) = m
            .thread_program(asymfence_common::ids::CoreId(i))
            .as_any()
            .downcast_ref::<DclThread>()
        {
            fast += p.fast_hits;
            inits += p.initialized_by_me;
            torn += p.torn_reads;
        }
    }
    (fast, inits, torn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    fn run(design: FenceDesign, fenced: bool) -> (u64, u64, u64) {
        let cfg = MachineConfig::builder()
            .cores(4)
            .fence_design(design)
            .seed(8)
            .build();
        let mut m = Machine::new(&cfg);
        for p in programs(&cfg, fenced, 25, 8) {
            m.add_thread(p);
        }
        assert_eq!(m.run(500_000_000), RunOutcome::Finished, "{design}");
        tally(&m)
    }

    #[test]
    fn initialization_happens_exactly_once() {
        let (_, inits, torn) = run(FenceDesign::SPlus, true);
        assert_eq!(inits, 1, "exactly one thread initializes");
        assert_eq!(torn, 0);
    }

    #[test]
    fn tso_makes_unfenced_dcl_safe() {
        // No fence anywhere: TSO's store-store and load-load ordering
        // still forbids observing the flag without the payload.
        let (fast, inits, torn) = run(FenceDesign::SPlus, false);
        assert_eq!(inits, 1);
        assert_eq!(torn, 0, "no torn reads under TSO even without fences");
        assert!(fast > 0, "later accesses hit the fast path");
    }

    #[test]
    fn fenced_variant_safe_under_weak_designs() {
        for design in [FenceDesign::WsPlus, FenceDesign::WPlus, FenceDesign::Wee] {
            let (_, inits, torn) = run(design, true);
            assert_eq!(inits, 1, "{design}");
            assert_eq!(torn, 0, "{design}");
        }
    }
}
