//! STAMP application profiles (the paper's third workload group).
//!
//! The six STAMP applications distributed with RSTM, modelled as
//! transaction mixes over the TLRW substrate: per-application read/write
//! set sizes, transaction frequency (compute between transactions) and
//! contention level follow the applications' published characterization
//! (Minh et al., IISWC'08) — e.g. `labyrinth` runs few, very long
//! transactions dominated by non-transactional work, while `intruder`
//! runs many short write-heavy ones. Executions are finite (a fixed
//! number of commits per thread) and reported as execution time, as in
//! Figure 11.

use asymfence::prelude::ThreadProgram;
use asymfence_common::config::MachineConfig;

use crate::tlrw::{self, AccessPattern, TxClass, TxProfile};

/// The six STAMP applications, in the paper's Figure 11 order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum StampApp {
    Genome,
    Intruder,
    Kmeans,
    Labyrinth,
    Ssca2,
    Vacation,
}

impl StampApp {
    /// All apps, in Figure 11's order.
    pub const ALL: [StampApp; 6] = [
        StampApp::Genome,
        StampApp::Intruder,
        StampApp::Kmeans,
        StampApp::Labyrinth,
        StampApp::Ssca2,
        StampApp::Vacation,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StampApp::Genome => "genome",
            StampApp::Intruder => "intruder",
            StampApp::Kmeans => "kmeans",
            StampApp::Labyrinth => "labyrinth",
            StampApp::Ssca2 => "ssca2",
            StampApp::Vacation => "vacation",
        }
    }

    /// Commits per thread for a standard finite run.
    pub fn commits_per_thread(self) -> u64 {
        match self {
            StampApp::Genome => 90,
            StampApp::Intruder => 170,
            StampApp::Kmeans => 150,
            StampApp::Labyrinth => 15,
            StampApp::Ssca2 => 200,
            StampApp::Vacation => 110,
        }
    }

    /// The app's TLRW profile.
    pub fn profile(self) -> TxProfile {
        match self {
            // Moderate read-mostly transactions, much non-tx work: most
            // stall time is memory, not fences (paper: "moderate
            // improvements because most of its stall time is due to
            // reasons other than fences").
            StampApp::Genome => TxProfile {
                name: self.name(),
                locations: 512,
                pattern: AccessPattern::Random,
                classes: vec![
                    TxClass {
                        weight: 3,
                        reads: (6, 12),
                        writes: (0, 1),
                    },
                    TxClass {
                        weight: 1,
                        reads: (4, 8),
                        writes: (1, 2),
                    },
                ],
                inter_tx_compute: (1800, 4800),
                intra_op_compute: (20, 60),
            },
            // Many short write-heavy transactions: W+ gains the most
            // (paper: "intruder includes many write operations").
            StampApp::Intruder => TxProfile {
                name: self.name(),
                locations: 256,
                pattern: AccessPattern::Random,
                classes: vec![TxClass {
                    weight: 1,
                    reads: (2, 6),
                    writes: (2, 5),
                }],
                inter_tx_compute: (260, 800),
                intra_op_compute: (10, 40),
            },
            // Tiny transactions between long compute phases.
            StampApp::Kmeans => TxProfile {
                name: self.name(),
                locations: 128,
                pattern: AccessPattern::Random,
                classes: vec![TxClass {
                    weight: 1,
                    reads: (1, 2),
                    writes: (1, 2),
                }],
                inter_tx_compute: (2100, 5400),
                intra_op_compute: (5, 20),
            },
            // Few, very long transactions; dominated by routing compute
            // (paper: "very few transactions ... cannot get noticeable
            // improvements").
            StampApp::Labyrinth => TxProfile {
                name: self.name(),
                locations: 1024,
                pattern: AccessPattern::Random,
                classes: vec![TxClass {
                    weight: 1,
                    reads: (18, 36),
                    writes: (8, 16),
                }],
                inter_tx_compute: (9000, 20000),
                intra_op_compute: (40, 120),
            },
            // Tiny write transactions on a large graph.
            StampApp::Ssca2 => TxProfile {
                name: self.name(),
                locations: 1024,
                pattern: AccessPattern::Random,
                classes: vec![TxClass {
                    weight: 1,
                    reads: (1, 2),
                    writes: (1, 1),
                }],
                inter_tx_compute: (800, 2100),
                intra_op_compute: (5, 20),
            },
            // Medium read-dominated reservations.
            StampApp::Vacation => TxProfile {
                name: self.name(),
                locations: 512,
                pattern: AccessPattern::Random,
                classes: vec![
                    TxClass {
                        weight: 3,
                        reads: (6, 14),
                        writes: (1, 2),
                    },
                    TxClass {
                        weight: 1,
                        reads: (4, 8),
                        writes: (2, 3),
                    },
                ],
                inter_tx_compute: (540, 1700),
                intra_op_compute: (15, 50),
            },
        }
    }
}

/// Builds the per-core programs for a STAMP app (finite run).
pub fn programs(app: StampApp, cfg: &MachineConfig, seed: u64) -> Vec<Box<dyn ThreadProgram>> {
    tlrw::programs(
        &app.profile(),
        cfg,
        seed ^ ((app as u64) << 16),
        Some(app.commits_per_thread()),
    )
}

/// Installs the app on a machine with warmed metadata (preferred).
pub fn install(m: &mut asymfence::Machine, app: StampApp, seed: u64) {
    tlrw::install(
        m,
        &app.profile(),
        seed ^ ((app as u64) << 16),
        Some(app.commits_per_thread()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;
    use crate::tlrw::tally;

    #[test]
    fn names_and_targets() {
        for app in StampApp::ALL {
            assert!(!app.name().is_empty());
            assert!(app.commits_per_thread() > 0);
        }
        assert!(
            StampApp::Labyrinth.commits_per_thread() < StampApp::Ssca2.commits_per_thread(),
            "labyrinth runs few huge transactions"
        );
    }

    #[test]
    fn intruder_is_write_heavy() {
        let p = StampApp::Intruder.profile();
        let c = p.classes[0];
        assert!(c.writes.0 >= 2, "intruder transactions write a lot");
    }

    #[test]
    fn ssca2_finishes_quickly() {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        for p in programs(StampApp::Ssca2, &cfg, 9) {
            m.add_thread(p);
        }
        assert_eq!(m.run(200_000_000), RunOutcome::Finished);
        let (commits, _) = tally(&m);
        assert_eq!(commits, 2 * StampApp::Ssca2.commits_per_thread());
    }
}
