//! The TLRW software transactional memory (Dice & Shavit, SPAA'10) as
//! shipped in RSTM — the paper's second workload substrate (§4.2,
//! Figure 5b).
//!
//! Every shared location has a read/write lock: an array of per-thread
//! reader flags plus a writer field. A reading transaction *stores its
//! reader flag, fences, then loads the writer field*; a writing
//! transaction *acquires the writer field, fences, then loads every
//! reader flag*. The two fences form the asymmetric group: reads are
//! ~3.5x more frequent than writes in the paper's workloads, so the read
//! fence is `Critical` (weak under WS+/SW+) and the write fence
//! `NonCritical` (strong). Like RSTM's ByteLock, reader flags of one lock
//! are packed together, so flag stores miss and make conventional fences
//! expensive.
//!
//! Transactions are eager-locking, eager-versioning; conflicts abort the
//! transaction, release its locks, back off and retry.
//!
//! **Native port:** `crates/native` ships the same lock protocol on
//! real threads as `asymfence_native::TlrwStm` (eager locking, lazy
//! versioning so aborts need no undo log), parameterized over a
//! `FencePair`: the read barrier issues the pair's critical fence, the
//! write barrier and commit the non-critical one. `native_bench
//! --crossval` compares its wall-clock ranking against this simulated
//! version's cycle ranking.

use asymfence::prelude::{Addr, Fetch, FenceRole, RmwKind, ThreadProgram};
use asymfence_common::rng::SimRng;

use crate::layout::{AddressAllocator, Scratch};
use crate::ops::{Ops, Tag};

/// How a transaction class picks its locations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// Uniformly random locations (hash tables).
    Random,
    /// A consecutive run of locations starting at a random point (lists).
    Chain,
    /// A root-to-leaf path: indices i, i/2, i/4, … (trees).
    TreePath,
    /// A single shared location (counters).
    Hotspot,
}

/// One weighted transaction class (e.g. "lookup": many reads, no write).
#[derive(Clone, Copy, Debug)]
pub struct TxClass {
    /// Relative frequency.
    pub weight: u64,
    /// Reads per transaction, inclusive range.
    pub reads: (u64, u64),
    /// Writes per transaction, inclusive range (write locations are drawn
    /// from the read set first — read-modify-write — then fresh ones).
    pub writes: (u64, u64),
}

/// A workload profile over the TLRW substrate.
#[derive(Clone, Debug)]
pub struct TxProfile {
    /// Display name.
    pub name: &'static str,
    /// Number of shared locations.
    pub locations: u64,
    /// Location-selection pattern.
    pub pattern: AccessPattern,
    /// Transaction classes and weights.
    pub classes: Vec<TxClass>,
    /// Compute between transactions, inclusive range.
    pub inter_tx_compute: (u64, u64),
    /// Compute between in-transaction operations, inclusive range.
    pub intra_op_compute: (u64, u64),
}

/// Addresses of the TLRW metadata and data.
#[derive(Clone, Debug)]
pub struct TlrwLayout {
    base: Addr,
    threads: usize,
    locations: u64,
    chunk_bytes: u64,
    logs: Vec<Addr>,
    log_bytes: u64,
}

impl TlrwLayout {
    /// Lays out `locations` lock objects for `threads` threads. Each
    /// object is `[readers[threads] | writer | data]`, line-aligned —
    /// reader flags intentionally share lines, like ByteLock. Objects
    /// are spread across directory-interleave chunks (general-purpose
    /// allocations scatter over the address space), with a varied
    /// intra-chunk offset so they do not alias in the L1.
    pub fn new(alloc: &mut AddressAllocator, threads: usize, locations: u64) -> Self {
        Self::with_chunk(alloc, threads, locations, 4096 * 32)
    }

    /// Like [`TlrwLayout::new`], with an explicit chunk size (pass the
    /// machine's `interleave_bytes`).
    pub fn with_chunk(
        alloc: &mut AddressAllocator,
        threads: usize,
        locations: u64,
        chunk_bytes: u64,
    ) -> Self {
        alloc.align_to(chunk_bytes);
        let base = alloc.watermark();
        // Reserve the whole strided range.
        let _ = alloc.region(locations * chunk_bytes);
        // Per-thread read-set/undo-log buffers (RSTM bookkeeping): one
        // chunk-aligned region per thread, larger than the L1 so the
        // streaming log stores miss — exactly the "write buffer full of
        // misses" that makes conventional fences expensive.
        let log_bytes = 64 * 1024;
        let logs = (0..threads)
            .map(|_| {
                alloc.align_to(chunk_bytes);
                alloc.region(log_bytes)
            })
            .collect();
        TlrwLayout {
            base,
            threads,
            locations,
            chunk_bytes,
            logs,
            log_bytes,
        }
    }

    /// Per-thread log-buffer base and size.
    pub fn log_region(&self, tid: usize) -> (Addr, u64) {
        (self.logs[tid], self.log_bytes)
    }

    fn obj(&self, loc: u64) -> Addr {
        debug_assert!(loc < self.locations);
        // One chunk per object, plus a per-object intra-chunk offset so
        // objects use different L1 sets.
        let obj_bytes = ((self.threads as u64 + 2) * 8).next_multiple_of(32);
        let max_slots = (self.chunk_bytes / obj_bytes).max(1);
        let offset = (loc.wrapping_mul(0x9E37_79B9) % max_slots) * obj_bytes;
        self.base.offset(loc * self.chunk_bytes + offset)
    }

    /// Reader flag of `tid` for location `loc`.
    pub fn reader_flag(&self, loc: u64, tid: usize) -> Addr {
        self.obj(loc).offset(8 * tid as u64)
    }

    /// Directory chunk size used by this layout.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// Writer field for `loc`.
    pub fn writer(&self, loc: u64) -> Addr {
        self.obj(loc).offset(8 * self.threads as u64)
    }

    /// Data word for `loc`.
    pub fn data(&self, loc: u64) -> Addr {
        self.obj(loc).offset(8 * (self.threads as u64 + 1))
    }

    /// Number of locations.
    pub fn locations(&self) -> u64 {
        self.locations
    }
}

/// A transaction: the ordered list of locations to read and write.
#[derive(Clone, Debug, Default)]
pub struct TxSpec {
    /// Locations read.
    pub reads: Vec<u64>,
    /// Locations written (after the reads).
    pub writes: Vec<u64>,
}

impl TxProfile {
    /// Draws one transaction.
    pub fn generate(&self, rng: &mut SimRng) -> TxSpec {
        let weights: Vec<u64> = self.classes.iter().map(|c| c.weight).collect();
        let class = self.classes[rng.weighted(&weights)];
        let n_reads = rng.range(class.reads.0, class.reads.1);
        let n_writes = rng.range(class.writes.0, class.writes.1);
        let mut reads = Vec::with_capacity(n_reads as usize);
        match self.pattern {
            AccessPattern::Random => {
                for _ in 0..n_reads {
                    reads.push(rng.below(self.locations));
                }
            }
            AccessPattern::Chain => {
                let start = rng.below(self.locations);
                for i in 0..n_reads {
                    reads.push((start + i) % self.locations);
                }
            }
            AccessPattern::TreePath => {
                let mut node = self.locations / 2 + rng.below(self.locations / 2 + 1);
                for _ in 0..n_reads {
                    reads.push(node % self.locations);
                    if node <= 1 {
                        break;
                    }
                    node /= 2;
                }
            }
            AccessPattern::Hotspot => {
                // Every read hits the hot location; after `dedup` that is
                // a single entry, so push it once.
                if n_reads > 0 {
                    reads.push(0);
                }
            }
        }
        reads.dedup();
        // Writes target the front of the read set (the leaf of a tree
        // path, the insertion point of a chain — real structures update
        // where they landed, not the shared root), then fresh locations.
        let mut writes = Vec::with_capacity(n_writes as usize);
        for i in 0..n_writes {
            if (i as usize) < reads.len() {
                writes.push(reads[i as usize]);
            } else if self.pattern == AccessPattern::Hotspot {
                writes.push(0);
            } else {
                writes.push(rng.below(self.locations));
            }
        }
        writes.dedup();
        TxSpec { reads, writes }
    }
}

/// Re-checks a barrier performs before giving up (RSTM's ByteLock spins
/// briefly on a held lock before aborting).
const BARRIER_PATIENCE: u32 = 3;

#[derive(Clone, Debug)]
enum TxState {
    Begin,
    NextOp,
    ReadWaitWriter { loc: u64, tag: Tag, patience: u32 },
    WriteWaitCas { loc: u64, tag: Tag, patience: u32 },
    WriteWaitReaders { loc: u64, tags: Vec<Tag>, patience: u32 },
    Commit,
    Abort,
    Finished,
}

/// A thread running TLRW transactions drawn from a [`TxProfile`].
#[derive(Clone)]
pub struct TlrwProgram {
    tid: usize,
    layout: TlrwLayout,
    profile: TxProfile,
    rng: SimRng,
    log: Scratch,
    ops: Ops,
    state: TxState,
    tx: TxSpec,
    op_idx: usize,
    read_locked: Vec<u64>,
    write_locked: Vec<u64>,
    attempt: u32,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Stop after this many commits (`None` = run forever, for throughput
    /// measurement).
    pub target_commits: Option<u64>,
}

impl TlrwProgram {
    /// Creates a transaction-running thread.
    pub fn new(
        tid: usize,
        layout: TlrwLayout,
        profile: TxProfile,
        rng: SimRng,
        target_commits: Option<u64>,
    ) -> Self {
        let (log_base, log_bytes) = layout.log_region(tid);
        let log = Scratch::sequential(log_base, log_bytes, 8);
        TlrwProgram {
            tid,
            layout,
            profile,
            rng,
            log,
            ops: Ops::new(),
            state: TxState::Begin,
            tx: TxSpec::default(),
            op_idx: 0,
            read_locked: Vec::new(),
            write_locked: Vec::new(),
            attempt: 0,
            commits: 0,
            aborts: 0,
            target_commits,
        }
    }

    /// Writer-field value for this thread (0 means free).
    fn wid(&self) -> u64 {
        self.tid as u64 + 1
    }

    fn tx_len(&self) -> usize {
        self.tx.reads.len() + self.tx.writes.len()
    }

    fn intra_compute(&mut self) {
        let (lo, hi) = self.profile.intra_op_compute;
        if hi > 0 {
            let c = self.rng.range(lo, hi);
            self.ops.compute(c);
        }
    }

    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, TxState::Finished) {
            TxState::Begin => {
                if let Some(t) = self.target_commits {
                    if self.commits >= t {
                        self.state = TxState::Finished;
                        return false;
                    }
                }
                let (lo, hi) = self.profile.inter_tx_compute;
                if hi > 0 {
                    let c = self.rng.range(lo, hi);
                    self.ops.compute(c);
                }
                self.tx = self.profile.generate(&mut self.rng);
                self.op_idx = 0;
                self.state = TxState::NextOp;
                true
            }
            TxState::NextOp => {
                if self.op_idx >= self.tx_len() {
                    self.state = TxState::Commit;
                    return true;
                }
                let idx = self.op_idx;
                self.op_idx += 1;
                if idx < self.tx.reads.len() {
                    let loc = self.tx.reads[idx];
                    if self.read_locked.contains(&loc) || self.write_locked.contains(&loc) {
                        self.ops.load_untagged(self.layout.data(loc));
                        self.state = TxState::NextOp;
                        return true;
                    }
                    // Read barrier (Figure 5b): flag, fence, check writer.
                    self.ops.store(self.layout.reader_flag(loc, self.tid), 1);
                    self.ops.fence(FenceRole::Critical);
                    let tag = self.ops.load(self.layout.writer(loc));
                    self.state = TxState::ReadWaitWriter {
                        loc,
                        tag,
                        patience: BARRIER_PATIENCE,
                    };
                } else {
                    let loc = self.tx.writes[idx - self.tx.reads.len()];
                    if self.write_locked.contains(&loc) {
                        self.ops.store(self.layout.data(loc), self.rng.next_u64());
                        self.state = TxState::NextOp;
                        return true;
                    }
                    // Write barrier: acquire writer, fence, check readers.
                    let tag = self.ops.rmw(
                        self.layout.writer(loc),
                        RmwKind::Cas {
                            expect: 0,
                            new: self.wid(),
                        },
                    );
                    self.state = TxState::WriteWaitCas {
                        loc,
                        tag,
                        patience: BARRIER_PATIENCE,
                    };
                }
                true
            }
            TxState::ReadWaitWriter { loc, tag, patience } => {
                let w = self.ops.take(tag);
                if w != 0 && w != self.wid() {
                    if patience > 0 {
                        // Spin briefly: the writer may be about to release.
                        self.ops.compute(24 + self.rng.below(16));
                        let tag = self.ops.load(self.layout.writer(loc));
                        self.state = TxState::ReadWaitWriter {
                            loc,
                            tag,
                            patience: patience - 1,
                        };
                        return true;
                    }
                    self.ops.store(self.layout.reader_flag(loc, self.tid), 0);
                    self.state = TxState::Abort;
                    return true;
                }
                self.read_locked.push(loc);
                self.ops.load_untagged(self.layout.data(loc));
                // Read-set bookkeeping entry (RSTM logs every read).
                let a = self.log.next();
                self.ops.store(a, loc);
                self.intra_compute();
                self.state = TxState::NextOp;
                true
            }
            TxState::WriteWaitCas { loc, tag, patience } => {
                let old = self.ops.take(tag);
                if old != 0 && old != self.wid() {
                    if patience > 0 {
                        self.ops.compute(24 + self.rng.below(16));
                        let tag = self.ops.rmw(
                            self.layout.writer(loc),
                            RmwKind::Cas {
                                expect: 0,
                                new: self.wid(),
                            },
                        );
                        self.state = TxState::WriteWaitCas {
                            loc,
                            tag,
                            patience: patience - 1,
                        };
                        return true;
                    }
                    self.state = TxState::Abort;
                    return true;
                }
                self.ops.fence(FenceRole::NonCritical);
                let tags: Vec<Tag> = (0..self.layout.threads)
                    .filter(|&j| j != self.tid)
                    .map(|j| self.ops.load(self.layout.reader_flag(loc, j)))
                    .collect();
                self.state = TxState::WriteWaitReaders {
                    loc,
                    tags,
                    patience: BARRIER_PATIENCE,
                };
                true
            }
            TxState::WriteWaitReaders { loc, tags, patience } => {
                let mut busy = false;
                for t in &tags {
                    if self.ops.take(*t) != 0 {
                        busy = true;
                    }
                }
                if busy {
                    if patience > 0 {
                        // Readers are short; wait them out briefly.
                        self.ops.compute(24 + self.rng.below(16));
                        let tags: Vec<Tag> = (0..self.layout.threads)
                            .filter(|&j| j != self.tid)
                            .map(|j| self.ops.load(self.layout.reader_flag(loc, j)))
                            .collect();
                        self.state = TxState::WriteWaitReaders {
                            loc,
                            tags,
                            patience: patience - 1,
                        };
                        return true;
                    }
                    self.ops.store(self.layout.writer(loc), 0);
                    self.state = TxState::Abort;
                    return true;
                }
                self.write_locked.push(loc);
                // Undo-log entry (eager versioning logs address + old
                // value), then the in-place data write.
                let a = self.log.next();
                self.ops.store(a, loc);
                let b = self.log.next();
                self.ops.store(b, self.rng.next_u64());
                self.ops.store(self.layout.data(loc), self.rng.next_u64());
                self.intra_compute();
                self.state = TxState::NextOp;
                true
            }
            TxState::Commit => {
                // Commit fence, then release all locks.
                self.ops.fence(FenceRole::NonCritical);
                for loc in self.read_locked.drain(..) {
                    self.ops.store(self.layout.reader_flag(loc, self.tid), 0);
                }
                for loc in self.write_locked.drain(..) {
                    self.ops.store(self.layout.writer(loc), 0);
                }
                self.commits += 1;
                self.attempt = 0;
                self.state = TxState::Begin;
                true
            }
            TxState::Abort => {
                self.aborts += 1;
                for loc in self.read_locked.drain(..) {
                    self.ops.store(self.layout.reader_flag(loc, self.tid), 0);
                }
                for loc in self.write_locked.drain(..) {
                    self.ops.store(self.layout.writer(loc), 0);
                }
                // Bounded exponential backoff with per-thread jitter.
                let exp = self.attempt.min(6);
                self.attempt += 1;
                let backoff = (48u64 << exp) + self.rng.below(64);
                self.ops.compute(backoff);
                self.state = TxState::Begin;
                true
            }
            TxState::Finished => false,
        }
    }
}

impl std::fmt::Debug for TlrwProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlrwProgram")
            .field("tid", &self.tid)
            .field("profile", &self.profile.name)
            .field("commits", &self.commits)
            .field("aborts", &self.aborts)
            .finish()
    }
}

impl ThreadProgram for TlrwProgram {
    fn fetch(&mut self) -> Fetch {
        loop {
            if let Some(f) = self.ops.poll() {
                return f;
            }
            if !self.step() {
                return Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.ops.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        self.profile.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Installs a TLRW workload on a machine: builds the layout, warms the
/// lock objects and per-thread log buffers into the L2 (the program
/// initialized them before the measured region), and adds one thread per
/// core.
pub fn install(
    m: &mut asymfence::Machine,
    profile: &TxProfile,
    seed: u64,
    target_commits: Option<u64>,
) {
    let cfg = m.config().clone();
    let threads = cfg.num_cores;
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    let layout = TlrwLayout::with_chunk(&mut alloc, threads, profile.locations, cfg.interleave_bytes());
    // Warm every lock object's lines and the log buffers.
    let obj_words = threads as u64 + 2;
    for loc in 0..profile.locations {
        let base = layout.reader_flag(loc, 0);
        let mut a = base;
        while a.raw() < base.raw() + obj_words * 8 {
            m.warm_memory(a, 0);
            a = a.offset(cfg.line_bytes);
        }
    }
    for tid in 0..threads {
        let (base, bytes) = layout.log_region(tid);
        let mut a = base;
        while a.raw() < base.raw() + bytes {
            m.warm_memory(a, 0);
            a = a.offset(cfg.line_bytes);
        }
    }
    let mut root = SimRng::new(seed ^ 0x7152_57a1);
    for tid in 0..threads {
        m.add_thread(Box::new(TlrwProgram::new(
            tid,
            layout.clone(),
            profile.clone(),
            root.fork(tid as u64),
            target_commits,
        )));
    }
}

/// Builds one [`TlrwProgram`] per core for a profile.
pub fn programs(
    profile: &TxProfile,
    cfg: &asymfence_common::config::MachineConfig,
    seed: u64,
    target_commits: Option<u64>,
) -> Vec<Box<dyn ThreadProgram>> {
    let threads = cfg.num_cores;
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    let layout = TlrwLayout::with_chunk(
        &mut alloc,
        threads,
        profile.locations,
        cfg.interleave_bytes(),
    );
    let mut root = SimRng::new(seed ^ 0x7152_57a1);
    (0..threads)
        .map(|tid| {
            Box::new(TlrwProgram::new(
                tid,
                layout.clone(),
                profile.clone(),
                root.fork(tid as u64),
                target_commits,
            )) as Box<dyn ThreadProgram>
        })
        .collect()
}

/// Sums `(commits, aborts)` across the machine's TLRW threads.
pub fn tally(m: &asymfence::Machine) -> (u64, u64) {
    let mut commits = 0;
    let mut aborts = 0;
    for i in 0..m.config().num_cores {
        if let Some(p) = m
            .thread_program(asymfence_common::ids::CoreId(i))
            .as_any()
            .downcast_ref::<TlrwProgram>()
        {
            commits += p.commits;
            aborts += p.aborts;
        }
    }
    (commits, aborts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    fn tiny_profile() -> TxProfile {
        TxProfile {
            name: "tiny",
            locations: 16,
            pattern: AccessPattern::Random,
            classes: vec![
                TxClass {
                    weight: 2,
                    reads: (2, 4),
                    writes: (0, 0),
                },
                TxClass {
                    weight: 1,
                    reads: (1, 2),
                    writes: (1, 2),
                },
            ],
            inter_tx_compute: (40, 120),
            intra_op_compute: (10, 30),
        }
    }

    #[test]
    fn layout_keeps_objects_line_aligned_and_disjoint() {
        let mut alloc = AddressAllocator::new(32, 8);
        let l = TlrwLayout::new(&mut alloc, 8, 4);
        for loc in 0..4 {
            assert_eq!(l.obj(loc).raw() % 32, 0);
            let w = l.writer(loc);
            let d = l.data(loc);
            assert_ne!(w, d);
            for t in 0..8 {
                assert_ne!(l.reader_flag(loc, t), w);
                assert_ne!(l.reader_flag(loc, t), d);
            }
        }
        assert!(l.obj(1).raw() >= l.data(0).raw() + 8, "objects disjoint");
    }

    #[test]
    fn reader_flags_share_lines_like_bytelock() {
        let mut alloc = AddressAllocator::new(32, 8);
        let l = TlrwLayout::new(&mut alloc, 8, 1);
        let l0 = l.reader_flag(0, 0).raw() / 32;
        let l3 = l.reader_flag(0, 3).raw() / 32;
        assert_eq!(l0, l3, "four 8-byte flags fit one 32-byte line");
    }

    #[test]
    fn generate_respects_pattern() {
        let p = TxProfile {
            pattern: AccessPattern::Chain,
            ..tiny_profile()
        };
        let mut rng = SimRng::new(5);
        for _ in 0..50 {
            let tx = p.generate(&mut rng);
            for w in tx.reads.windows(2) {
                assert_eq!((w[0] + 1) % p.locations, w[1], "chain is consecutive");
            }
        }
    }

    #[test]
    fn transactions_commit_under_every_design() {
        for design in [
            FenceDesign::SPlus,
            FenceDesign::WsPlus,
            FenceDesign::SwPlus,
            FenceDesign::WPlus,
            FenceDesign::Wee,
        ] {
            let cfg = MachineConfig::builder()
                .cores(4)
                .fence_design(design)
                .build();
            let mut m = Machine::new(&cfg);
            for p in programs(&tiny_profile(), &cfg, 99, Some(20)) {
                m.add_thread(p);
            }
            let outcome = m.run(50_000_000);
            assert_eq!(outcome, RunOutcome::Finished, "{design}");
            let (commits, _) = tally(&m);
            assert_eq!(commits, 4 * 20, "{design}: every thread hit its target");
        }
    }

    #[test]
    fn contended_hotspot_aborts_but_makes_progress() {
        let p = TxProfile {
            name: "hot",
            locations: 4,
            pattern: AccessPattern::Hotspot,
            classes: vec![TxClass {
                weight: 1,
                reads: (1, 1),
                writes: (1, 1),
            }],
            inter_tx_compute: (10, 30),
            intra_op_compute: (0, 0),
        };
        let cfg = MachineConfig::builder().cores(4).build();
        let mut m = Machine::new(&cfg);
        for prog in programs(&p, &cfg, 3, Some(10)) {
            m.add_thread(prog);
        }
        assert_eq!(m.run(100_000_000), RunOutcome::Finished);
        let (commits, aborts) = tally(&m);
        assert_eq!(commits, 40);
        assert!(aborts > 0, "a single hot location must cause conflicts");
    }

    #[test]
    fn throughput_mode_runs_until_cycle_limit() {
        let cfg = MachineConfig::builder().cores(2).build();
        let mut m = Machine::new(&cfg);
        for p in programs(&tiny_profile(), &cfg, 1, None) {
            m.add_thread(p);
        }
        assert_eq!(m.run(300_000), RunOutcome::CycleLimit);
        let (commits, _) = tally(&m);
        assert!(commits > 0, "some transactions committed in the window");
    }

    #[test]
    fn read_fence_is_critical_write_fence_is_strong_under_ws_plus() {
        let cfg = MachineConfig::builder()
            .cores(4)
            .fence_design(FenceDesign::WsPlus)
            .build();
        let mut m = Machine::new(&cfg);
        for p in programs(&tiny_profile(), &cfg, 7, Some(30)) {
            m.add_thread(p);
        }
        assert_eq!(m.run(100_000_000), RunOutcome::Finished);
        let s = m.stats().aggregate();
        assert!(s.wf_count > 0, "read barriers used weak fences");
        assert!(s.sf_count > 0, "write/commit barriers used strong fences");
        assert!(
            s.wf_count > s.sf_count / 4,
            "reads are the common case: wf={} sf={}",
            s.wf_count,
            s.sf_count
        );
    }
}
