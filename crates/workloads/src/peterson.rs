//! Peterson's two-thread lock, deliberately **unannotated** — the
//! analyzer's acid test.
//!
//! The entry protocol is `flag[me] := 1; victim := me; wait until
//! flag[other] = 0 or victim ≠ me`. Under TSO the two entry stores sit
//! in the write buffer while the waiting loads complete early, so both
//! threads can read stale zeros and enter the critical section together
//! — the classic store→load window. Unlike [`dekker`](crate::dekker),
//! this module places **no fences**: the whole-program analyzer
//! (`asymfence-analyze`) must discover the windows itself and emit a
//! placement, mirroring how PR 4's assignment sweep caught the
//! dekker/bakery gaps by search rather than by hand.
//!
//! Mutual exclusion is witnessed exactly like the native and dekker
//! kernels: an `owner` word is stored on entry and re-read inside the
//! critical section; observing another thread's id is a violation.

use asymfence::prelude::{Addr, Fetch, ThreadProgram};
use asymfence_common::config::MachineConfig;
use asymfence_common::rng::SimRng;

use crate::layout::AddressAllocator;
use crate::ops::{Ops, Tag};

/// Critical-section entries each thread performs (matched by the
/// analyzer's cost comparisons, like the `sites` iteration constants).
pub const PETERSON_ITERS: u64 = 8;

/// Shared words of the Peterson protocol.
#[derive(Clone, Debug)]
pub struct PetersonLayout {
    /// Intent flags, one isolated word per thread.
    pub flag: [Addr; 2],
    /// The thread that yields on contention (last writer waits).
    pub victim: Addr,
    /// Critical-section witness word.
    pub owner: Addr,
}

impl PetersonLayout {
    /// Allocates the protocol words on isolated cache lines.
    pub fn new(alloc: &mut AddressAllocator) -> Self {
        PetersonLayout {
            flag: [alloc.isolated_word(), alloc.isolated_word()],
            victim: alloc.isolated_word(),
            owner: alloc.isolated_word(),
        }
    }
}

#[derive(Clone, Debug)]
enum PtState {
    Start,
    CheckOther { tag: Tag },
    CheckVictim { tag: Tag },
    EnterCs,
    VerifyCs { tag: Tag },
    ExitCs,
    Finished,
}

/// One Peterson participant performing `iterations` critical sections.
#[derive(Clone)]
pub struct PetersonThread {
    tid: usize,
    layout: PetersonLayout,
    iterations: u64,
    cs_compute: u64,
    rng: SimRng,
    ops: Ops,
    state: PtState,
    /// Critical sections completed.
    pub entries: u64,
    /// Times the critical-section witness was observed corrupted. With
    /// no fences this *can* be nonzero under TSO — that is the point.
    pub mutex_violations: u64,
}

impl PetersonThread {
    fn other(&self) -> usize {
        1 - self.tid
    }

    /// Announce intent and yield the victim slot, then read the other
    /// thread's flag — two stores straight into a racing load, with no
    /// fence anywhere.
    fn announce(&mut self) -> PtState {
        self.ops.store(self.layout.flag[self.tid], 1);
        self.ops.store(self.layout.victim, self.tid as u64);
        let tag = self.ops.load(self.layout.flag[self.other()]);
        PtState::CheckOther { tag }
    }

    fn step(&mut self) -> bool {
        match std::mem::replace(&mut self.state, PtState::Finished) {
            PtState::Start => {
                if self.entries >= self.iterations {
                    self.state = PtState::Finished;
                    return false;
                }
                self.state = self.announce();
                true
            }
            PtState::CheckOther { tag } => {
                if self.ops.take(tag) == 0 {
                    self.state = PtState::EnterCs;
                } else {
                    let tag = self.ops.load(self.layout.victim);
                    self.state = PtState::CheckVictim { tag };
                }
                true
            }
            PtState::CheckVictim { tag } => {
                if self.ops.take(tag) != self.tid as u64 {
                    // Someone else is the victim: our turn.
                    self.state = PtState::EnterCs;
                } else {
                    self.ops.compute(10 + self.rng.below(10));
                    let tag = self.ops.load(self.layout.flag[self.other()]);
                    self.state = PtState::CheckOther { tag };
                }
                true
            }
            PtState::EnterCs => {
                self.ops.store(self.layout.owner, self.tid as u64 + 1);
                self.ops.compute(self.cs_compute);
                let tag = self.ops.load(self.layout.owner);
                self.state = PtState::VerifyCs { tag };
                true
            }
            PtState::VerifyCs { tag } => {
                if self.ops.take(tag) != self.tid as u64 + 1 {
                    self.mutex_violations += 1;
                }
                self.state = PtState::ExitCs;
                true
            }
            PtState::ExitCs => {
                self.ops.store(self.layout.flag[self.tid], 0);
                self.entries += 1;
                self.ops.compute(20 + self.rng.below(30));
                self.state = PtState::Start;
                true
            }
            PtState::Finished => false,
        }
    }
}

impl std::fmt::Debug for PetersonThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PetersonThread")
            .field("tid", &self.tid)
            .field("entries", &self.entries)
            .field("violations", &self.mutex_violations)
            .finish()
    }
}

impl ThreadProgram for PetersonThread {
    fn fetch(&mut self) -> Fetch {
        loop {
            if let Some(f) = self.ops.poll() {
                return f;
            }
            if !self.step() {
                return Fetch::Done;
            }
        }
    }

    fn deliver(&mut self, tag: u64, value: u64) {
        self.ops.deliver(tag, value);
    }

    fn snapshot(&self) -> Box<dyn ThreadProgram> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        "peterson"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Builds the two (fence-free) Peterson threads.
pub fn programs(cfg: &MachineConfig, iterations: u64, seed: u64) -> Vec<Box<dyn ThreadProgram>> {
    let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
    let layout = PetersonLayout::new(&mut alloc);
    let mut root = SimRng::new(seed ^ 0x9E7E);
    (0..2)
        .map(|tid| {
            Box::new(PetersonThread {
                tid,
                layout: layout.clone(),
                iterations,
                cs_compute: 40,
                rng: root.fork(tid as u64),
                ops: Ops::new(),
                state: PtState::Start,
                entries: 0,
                mutex_violations: 0,
            }) as Box<dyn ThreadProgram>
        })
        .collect()
}

/// Sums `(entries, mutex_violations)` over the machine's Peterson
/// threads.
pub fn tally(m: &asymfence::Machine) -> (u64, u64) {
    let mut entries = 0;
    let mut violations = 0;
    for i in 0..m.config().num_cores {
        if let Some(p) = m
            .thread_program(asymfence_common::ids::CoreId(i))
            .as_any()
            .downcast_ref::<PetersonThread>()
        {
            entries += p.entries;
            violations += p.mutex_violations;
        }
    }
    (entries, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asymfence::prelude::*;

    #[test]
    fn completes_without_fences() {
        let cfg = MachineConfig::builder()
            .cores(2)
            .fence_design(FenceDesign::SPlus)
            .build();
        let mut m = Machine::new(&cfg);
        for p in programs(&cfg, PETERSON_ITERS, 5) {
            m.add_thread(p);
        }
        assert_eq!(m.run(400_000_000), RunOutcome::Finished);
        let (entries, _violations) = tally(&m);
        // Progress always holds; mutual exclusion is NOT asserted —
        // with no fences the TSO window is real, and the analyzer's
        // job is to close it.
        assert_eq!(entries, 2 * PETERSON_ITERS);
    }

    #[test]
    fn correctly_fenced_peterson_excludes() {
        // The known-good placement: a full fence between the entry
        // stores and the first flag read. Injected via FencedProgram
        // with line-granular windows, proving the decorator closes the
        // window the protocol opens.
        use asymfence::cpu::insert::FencedProgram;
        use asymfence_common::assign::synthetic_site;
        use asymfence_common::placement::{PlacedWindow, PlacementSpec};

        let cfg = MachineConfig::builder()
            .cores(2)
            .fence_design(FenceDesign::SPlus)
            .build();
        let mut alloc = AddressAllocator::new(cfg.line_bytes, cfg.word_bytes);
        let layout = PetersonLayout::new(&mut alloc);
        let line = |a: Addr| a.raw() / cfg.line_bytes;
        let mut windows = Vec::new();
        for tid in 0..2u32 {
            let me = tid as usize;
            for store in [layout.flag[me], layout.victim] {
                windows.push(PlacedWindow {
                    site: synthetic_site(tid),
                    thread: tid,
                    store_line: line(store),
                    load_line: line(layout.flag[1 - me]),
                });
            }
        }
        let spec = PlacementSpec::from_windows(&windows);
        let mut m = Machine::new(&cfg);
        for (tid, p) in programs(&cfg, PETERSON_ITERS, 5).into_iter().enumerate() {
            m.add_thread(Box::new(FencedProgram::new(
                p,
                tid,
                spec,
                cfg.line_bytes,
                FenceRole::NonCritical,
            )));
        }
        assert_eq!(m.run(400_000_000), RunOutcome::Finished);
        let mut entries = 0;
        let mut violations = 0;
        for i in 0..m.config().num_cores {
            if let Some(f) = m
                .thread_program(asymfence_common::ids::CoreId(i))
                .as_any()
                .downcast_ref::<FencedProgram>()
            {
                // The inner program holds the tallies.
                if let Some(p) = f.inner_any().downcast_ref::<PetersonThread>() {
                    entries += p.entries;
                    violations += p.mutex_violations;
                }
            }
        }
        assert_eq!(entries, 2 * PETERSON_ITERS);
        assert_eq!(violations, 0, "fenced Peterson must exclude");
    }
}
