//! Scoped-thread parallelism primitives for embarrassingly parallel,
//! deterministic work.
//!
//! Every simulation in this workspace is a pure function of its inputs,
//! so sweeps (figure grids, ablation points, explorer seeds) can fan out
//! over a worker pool as long as aggregation is order-preserving. This
//! module provides exactly that, on `std::thread::scope` with zero
//! external dependencies:
//!
//! * [`par_map`] — map a function over a slice, returning results in
//!   input order regardless of completion order.
//! * [`par_min_find`] — find the *smallest* index whose predicate hits,
//!   with early cut-off of indices that can no longer win (the parallel
//!   equivalent of a serial first-failure scan).
//!
//! The worker count is resolved by [`resolve_jobs`]: an explicit request
//! wins, then the `ASF_JOBS` environment variable, then
//! [`std::thread::available_parallelism`]. `jobs == 1` runs strictly
//! serially on the calling thread (no worker threads are spawned), which
//! unit tests use to pin evaluation order.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "ASF_JOBS";

/// Environment variable selecting the shard count (`ASF_SHARDS`).
pub const SHARDS_ENV: &str = "ASF_SHARDS";

/// Environment variable selecting this process's shard id
/// (`ASF_SHARD_ID`, `0..ASF_SHARDS`).
pub const SHARD_ID_ENV: &str = "ASF_SHARD_ID";

/// A deterministic 1-of-N partition of an indexed work grid.
///
/// Sharding is round-robin by index: shard `k` of `n` owns every item
/// whose index satisfies `i % n == k`. Round-robin (rather than block)
/// partitioning keeps per-shard load balanced when cost varies smoothly
/// with the index (seed sweeps, mask enumerations, figure grids), and —
/// critically for the sweep ledger — makes ownership a pure function of
/// `(index, shards)`, so a resumed shard recomputes exactly the set it
/// owned before the crash.
///
/// [`Shard::whole`] (1 shard, id 0) owns everything and is the identity:
/// every seam that consults a shard produces byte-identical output under
/// it, which is what keeps single-process runs unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// This shard's id, `0..count`.
    pub id: u64,
    /// Total number of shards (>= 1).
    pub count: u64,
}

impl Shard {
    /// The identity shard: owns every index.
    pub fn whole() -> Self {
        Shard { id: 0, count: 1 }
    }

    /// Shard `id` of `count`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `id >= count`.
    pub fn new(id: u64, count: u64) -> Self {
        assert!(count >= 1, "shard count must be at least 1");
        assert!(id < count, "shard id {id} out of range 0..{count}");
        Shard { id, count }
    }

    /// The shard selected by `ASF_SHARDS` / `ASF_SHARD_ID`, falling back
    /// to [`Shard::whole`] when unset or unparsable. An out-of-range id
    /// also falls back to the whole grid (the seams must never silently
    /// drop all work).
    pub fn from_env() -> Self {
        let parse = |var: &str| std::env::var(var).ok().and_then(|v| v.parse::<u64>().ok());
        match (parse(SHARDS_ENV), parse(SHARD_ID_ENV)) {
            (Some(count), Some(id)) if count >= 1 && id < count => Shard { id, count },
            _ => Shard::whole(),
        }
    }

    /// Whether this shard is the whole grid.
    pub fn is_whole(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns index `i`.
    pub fn owns(&self, i: u64) -> bool {
        i % self.count == self.id
    }

    /// How many indices in `0..n` this shard owns.
    pub fn owned_in(&self, n: u64) -> u64 {
        if n <= self.id {
            0
        } else {
            (n - self.id).div_ceil(self.count)
        }
    }
}

impl Default for Shard {
    fn default() -> Self {
        Shard::whole()
    }
}

/// Resolves a worker count: `explicit` (if nonzero) beats `ASF_JOBS`
/// (if set and nonzero) beats [`std::thread::available_parallelism`].
/// Always returns at least 1.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var(JOBS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` with up to `jobs` workers, preserving input
/// order in the output. `f` receives `(index, &item)`. With `jobs <= 1`
/// (or fewer than two items) everything runs inline on the calling
/// thread, in index order.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(items.len());
        for w in workers {
            match w.join() {
                Ok(chunk) => all.extend(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Finds the smallest `i` in `0..n` with `f(i).is_some()`, evaluating
/// candidates with up to `jobs` workers. Returns that index and its
/// payload, or `None` when no index hits.
///
/// The result is identical to a serial scan: workers claim indices in
/// ascending order and stop once every remaining index is larger than an
/// already-found hit, and the minimum over all hits is returned. Under
/// `jobs > 1` *more* candidates than the serial scan may be evaluated
/// (indices past the eventual winner that were claimed before it was
/// found); callers that report work done should charge the
/// serial-equivalent count `i + 1`.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread.
pub fn par_min_find<R, F>(jobs: usize, n: u64, f: F) -> Option<(u64, R)>
where
    R: Send,
    F: Fn(u64) -> Option<R> + Sync,
{
    let jobs = jobs.max(1).min(usize::try_from(n).unwrap_or(usize::MAX).max(1));
    if jobs <= 1 {
        for i in 0..n {
            if let Some(r) = f(i) {
                return Some((i, r));
            }
        }
        return None;
    }
    let next = AtomicU64::new(0);
    let best = AtomicU64::new(u64::MAX);
    let hits: Vec<(u64, R)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        // Claims are monotone, so once a claimed index can
                        // no longer beat the best hit, none of the later
                        // ones can either.
                        if i >= n || i > best.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Some(r) = f(i) {
                            best.fetch_min(i, Ordering::Relaxed);
                            out.push((i, r));
                        }
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::new();
        for w in workers {
            match w.join() {
                Ok(chunk) => all.extend(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    hits.into_iter().min_by_key(|&(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 8] {
            let out = par_map(jobs, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_serial_runs_in_index_order() {
        // jobs = 1 must evaluate strictly in order on the calling thread.
        let items = [0usize, 1, 2, 3];
        let seen = std::sync::Mutex::new(Vec::new());
        par_map(1, &items, |i, _| seen.lock().unwrap().push(i));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn par_map_empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(8, &none, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_min_find_matches_serial_scan() {
        // Hits at 13, 40, 77: the minimum must win under any job count.
        let pred = |i: u64| (i == 13 || i == 40 || i == 77).then_some(i * 2);
        for jobs in [1, 2, 8] {
            assert_eq!(par_min_find(jobs, 100, pred), Some((13, 26)), "jobs={jobs}");
        }
        for jobs in [1, 2, 8] {
            assert_eq!(par_min_find::<u64, _>(jobs, 100, |_| None), None);
        }
    }

    #[test]
    fn par_min_find_empty_range() {
        assert_eq!(par_min_find::<(), _>(4, 0, |_| Some(())), None);
    }

    #[test]
    fn resolve_jobs_explicit_wins() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        // Zero means "auto", never a zero-sized pool.
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    #[test]
    fn shard_round_robin_partition_is_exact() {
        // Every index in 0..n is owned by exactly one of the k shards,
        // and owned_in agrees with a direct count.
        for count in 1..=5u64 {
            for n in [0u64, 1, 7, 64] {
                let mut total = 0;
                for id in 0..count {
                    let s = Shard::new(id, count);
                    let direct = (0..n).filter(|&i| s.owns(i)).count() as u64;
                    assert_eq!(s.owned_in(n), direct, "id={id} count={count} n={n}");
                    total += direct;
                }
                assert_eq!(total, n);
            }
        }
    }

    #[test]
    fn shard_whole_owns_everything() {
        let w = Shard::whole();
        assert!(w.is_whole());
        assert_eq!(w, Shard::default());
        for i in 0..100 {
            assert!(w.owns(i));
        }
        assert_eq!(w.owned_in(37), 37);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_rejects_out_of_range_id() {
        let _ = Shard::new(3, 3);
    }

    #[test]
    fn par_map_propagates_panics() {
        let res = std::panic::catch_unwind(|| {
            par_map(4, &[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(res.is_err());
    }
}
