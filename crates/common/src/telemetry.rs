//! Harness telemetry: wall-clock timers, machine-readable metrics
//! snapshots, and the snapshot diff engine behind `perfdiff`.
//!
//! Everything before this module observed the *simulated* machine
//! ([`crate::stats`], [`crate::trace`]); this module observes the
//! harness itself — how long each phase took, how many simulator runs
//! per wall-clock second the worker pool sustained, how much memory the
//! process peaked at — and serializes it as a [`BenchSnapshot`]: one
//! [`MetricEntry`] per (section, workload, design) cell carrying
//! wall-clock, throughput, the full [`DerivedStats`] ratio block and
//! per-class fence-latency percentiles.
//!
//! Like the rest of the workspace the module is zero-dependency: JSON is
//! written and parsed by the hand-rolled [`Json`] value type (object key
//! order is preserved, floats render in Rust's shortest round-trip form,
//! so equal snapshots are equal bytes).
//!
//! Determinism: wall-clock and RSS are inherently machine-dependent, so
//! they are the *only* nondeterministic fields in a snapshot. Setting
//! [`DETERMINISTIC_ENV`] (`ASF_TELEMETRY_DETERMINISTIC=1`) zeroes them
//! at collection time, which makes snapshot bytes identical at any
//! worker count — that is what the checked-in `results/bench_baseline.json`
//! is generated with and what CI diffs against.
//!
//! # Examples
//!
//! ```
//! use asymfence_common::telemetry::{BenchSnapshot, MetricEntry, diff, DiffOptions};
//!
//! let mut a = BenchSnapshot::new("base");
//! a.entries.push(MetricEntry::new("fig08", "fib", "WS+"));
//! a.entries[0].sim_cycles = 1000;
//! let json = a.to_json();
//! let b = BenchSnapshot::parse(&json).unwrap();
//! assert!(diff(&a, &b, &DiffOptions::default()).clean());
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use crate::stats::DerivedStats;
use crate::trace::FenceTally;

/// Highest snapshot schema version this build understands.
/// Version 2 added the [`PoolTelemetry`] block (machine-pool hits,
/// rebuilds and arena bytes kept alive across resets). Still within
/// version 2, native-runtime snapshots additively carry a snapshot-level
/// `backend` string and per-entry `ops`/`ns_per_op` fields — all three
/// are omitted from simulator snapshots (so their bytes are unchanged)
/// and parse as absent-tolerant optionals.
/// Version 3 adds the optional [`ShardTelemetry`] block written by
/// merged sharded-sweep snapshots. Snapshots without a shard block —
/// including everything the deterministic collection mode produces —
/// still serialize as version 2, so the checked-in baseline and all
/// byte-diffed CI artifacts are unchanged; [`BenchSnapshot::parse`]
/// accepts [`MIN_SCHEMA_VERSION`]`..=SCHEMA_VERSION`.
pub const SCHEMA_VERSION: u64 = 3;

/// Oldest snapshot schema version this build still parses.
pub const MIN_SCHEMA_VERSION: u64 = 2;

/// Environment variable zeroing wall-clock/RSS fields at collection time
/// (`ASF_TELEMETRY_DETERMINISTIC=1`), making snapshot bytes identical at
/// any worker count and on any machine.
pub const DETERMINISTIC_ENV: &str = "ASF_TELEMETRY_DETERMINISTIC";

/// Whether the environment requests deterministic (timing-masked)
/// telemetry.
pub fn deterministic_from_env() -> bool {
    std::env::var(DETERMINISTIC_ENV).is_ok_and(|v| v != "0")
}

/// Peak resident-set size of this process in bytes, sampled from
/// `/proc/self/status` (`VmHWM`). `None` where procfs is unavailable
/// (non-Linux), so callers degrade to 0 instead of failing.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// A monotonic stopwatch (thin wrapper over [`Instant`], so call sites
/// read as telemetry rather than ad-hoc timing).
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Accumulating named phase timers: `enter` closes the previous phase
/// and opens the next, so a linear pipeline (parse → run section A →
/// run section B → serialize) gets per-phase wall-clock with one call
/// per transition. Re-entering a name accumulates into it.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, u64)>,
    current: Option<(String, Instant)>,
}

impl PhaseTimer {
    /// An empty timer with no open phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closes the current phase (if any) and opens `name`.
    pub fn enter(&mut self, name: &str) {
        self.finish();
        self.current = Some((name.to_string(), Instant::now()));
    }

    /// Closes the current phase without opening a new one.
    pub fn finish(&mut self) {
        if let Some((name, start)) = self.current.take() {
            let ns = start.elapsed().as_nanos() as u64;
            match self.phases.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += ns,
                None => self.phases.push((name, ns)),
            }
        }
    }

    /// Completed phases in first-entry order as `(name, total_ns)`.
    pub fn phases(&self) -> &[(String, u64)] {
        &self.phases
    }
}

/// Formats a nanosecond count for progress lines (`850ms`, `12.3s`,
/// `2m05s`).
pub fn human_ns(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if secs >= 60.0 {
        format!("{}m{:02}s", (secs / 60.0) as u64, (secs % 60.0) as u64)
    } else if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{}ms", ns / 1_000_000)
    }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// A JSON value with order-preserving objects, written and parsed
/// in-repo (the workspace builds `--offline` with no external crates).
///
/// Rendering is deterministic: object keys keep insertion order and
/// floats use Rust's shortest round-trip `Display`, so equal values are
/// equal bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a decimal point while they
    /// fit `f64` exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives/fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders pretty-printed JSON (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    render_str(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Renders compact single-line JSON (no spaces or newlines) — the
    /// form the sweep run ledger appends, one record per line, so a
    /// ledger file is valid JSONL and a torn tail is exactly the bytes
    /// after the last `\n`. Deterministic like [`Json::render`].
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(out, k);
                    out.push(':');
                    v.render_compact_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; these only arise from a division bug, so
        // encode as null-adjacent zero rather than emitting invalid JSON.
        out.push('0');
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{s}` at offset {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let n = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Per-class fence-latency summary inside a [`MetricEntry`], distilled
/// from the exact [`FenceTally`] histograms of the entry's runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FenceLatencySummary {
    /// Class label (`sf` / `wf` / `wee-wf`).
    pub class: String,
    /// Fences issued.
    pub issued: u64,
    /// Fences completed.
    pub completed: u64,
    /// Median issue→complete latency (log2-bucket upper bound).
    pub p50: u64,
    /// 90th-percentile latency.
    pub p90: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// Largest completed-fence latency.
    pub max: u64,
    /// Mean latency over completed fences.
    pub mean: f64,
}

impl FenceLatencySummary {
    /// Distills one class's tally (percentiles from the log2 buckets).
    pub fn from_tally(class: &str, t: &FenceTally) -> Self {
        FenceLatencySummary {
            class: class.to_string(),
            issued: t.issued,
            completed: t.completed,
            p50: t.percentile(50.0),
            p90: t.percentile(90.0),
            p99: t.percentile(99.0),
            max: t.max_latency,
            mean: t.mean_latency(),
        }
    }
}

/// One (section, workload, design) cell of a [`BenchSnapshot`]: exact
/// simulation counters, the derived ratio block, fence-latency
/// percentiles and (unless deterministic mode masked them) wall-clock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricEntry {
    /// Report section (figure/table name, `synth`, `explore`, …).
    pub section: String,
    /// Workload name.
    pub workload: String,
    /// Fence-design label.
    pub design: String,
    /// Simulator runs aggregated into this cell.
    pub runs: u64,
    /// Total simulated cycles across the runs.
    pub sim_cycles: u64,
    /// Total instructions retired.
    pub instrs_retired: u64,
    /// Committed transactions (STM workloads).
    pub commits: u64,
    /// Aborted transactions (STM workloads).
    pub aborts: u64,
    /// Total wall-clock of the runs, ns (0 in deterministic mode).
    pub wall_ns: u64,
    /// Fastest single run, ns (0 in deterministic mode).
    pub task_wall_min_ns: u64,
    /// Slowest single run, ns (0 in deterministic mode).
    pub task_wall_max_ns: u64,
    /// Native protocol operations (native-runtime cells only; 0 and
    /// omitted from the JSON for simulator cells).
    pub ops: u64,
    /// Mean wall-clock per native operation (native-runtime cells only;
    /// 0 and omitted from the JSON for simulator cells, masked to 0 in
    /// deterministic mode).
    pub ns_per_op: f64,
    /// Fence sites the analyzer discovered (analyzer cells only; 0 and
    /// omitted from the JSON elsewhere).
    pub sites_discovered: u64,
    /// Critical cycles the analyzer enumerated (analyzer cells only; 0
    /// and omitted from the JSON elsewhere).
    pub cycles_enumerated: u64,
    /// Candidate strength masks pruned before the oracle (analyzer
    /// cells only; 0 and omitted from the JSON elsewhere).
    pub masks_pruned: u64,
    /// Serial-equivalent oracle runs charged (analyzer cells only; 0
    /// and omitted from the JSON elsewhere).
    pub oracle_runs: u64,
    /// The full derived-ratio block ([`DerivedStats`]).
    pub derived: DerivedStats,
    /// Per-class fence-latency summaries (classes with issued fences).
    pub fences: Vec<FenceLatencySummary>,
}

impl MetricEntry {
    /// A zeroed entry for the given key.
    pub fn new(section: &str, workload: &str, design: &str) -> Self {
        MetricEntry {
            section: section.to_string(),
            workload: workload.to_string(),
            design: design.to_string(),
            ..Default::default()
        }
    }

    /// The alignment key `(section, workload, design)`.
    pub fn key(&self) -> (String, String, String) {
        (
            self.section.clone(),
            self.workload.clone(),
            self.design.clone(),
        )
    }

    /// Simulated cycles per wall-clock second (0 when wall is masked).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        per_sec(self.sim_cycles, self.wall_ns)
    }

    /// Instructions retired per wall-clock second (0 when masked).
    pub fn instrs_per_sec(&self) -> f64 {
        per_sec(self.instrs_retired, self.wall_ns)
    }

    /// Simulator runs per wall-clock second (0 when masked).
    pub fn runs_per_sec(&self) -> f64 {
        per_sec(self.runs, self.wall_ns)
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("section".to_string(), Json::Str(self.section.clone())),
            ("workload".to_string(), Json::Str(self.workload.clone())),
            ("design".to_string(), Json::Str(self.design.clone())),
            ("runs".to_string(), Json::Num(self.runs as f64)),
            ("sim_cycles".to_string(), Json::Num(self.sim_cycles as f64)),
            (
                "instrs_retired".to_string(),
                Json::Num(self.instrs_retired as f64),
            ),
            ("commits".to_string(), Json::Num(self.commits as f64)),
            ("aborts".to_string(), Json::Num(self.aborts as f64)),
            ("wall_ns".to_string(), Json::Num(self.wall_ns as f64)),
            (
                "task_wall_min_ns".to_string(),
                Json::Num(self.task_wall_min_ns as f64),
            ),
            (
                "task_wall_max_ns".to_string(),
                Json::Num(self.task_wall_max_ns as f64),
            ),
            (
                "sim_cycles_per_sec".to_string(),
                Json::Num(self.sim_cycles_per_sec()),
            ),
            (
                "instrs_per_sec".to_string(),
                Json::Num(self.instrs_per_sec()),
            ),
            ("runs_per_sec".to_string(), Json::Num(self.runs_per_sec())),
        ];
        // Native-runtime cells only: omitted entirely for simulator
        // cells so existing v2 snapshots stay byte-identical.
        if self.ops > 0 {
            fields.push(("ops".to_string(), Json::Num(self.ops as f64)));
            fields.push(("ns_per_op".to_string(), Json::Num(self.ns_per_op)));
        }
        // Analyzer cells only: same additive-schema rule as `ops`.
        if self.sites_discovered > 0
            || self.cycles_enumerated > 0
            || self.masks_pruned > 0
            || self.oracle_runs > 0
        {
            fields.push((
                "sites_discovered".to_string(),
                Json::Num(self.sites_discovered as f64),
            ));
            fields.push((
                "cycles_enumerated".to_string(),
                Json::Num(self.cycles_enumerated as f64),
            ));
            fields.push((
                "masks_pruned".to_string(),
                Json::Num(self.masks_pruned as f64),
            ));
            fields.push((
                "oracle_runs".to_string(),
                Json::Num(self.oracle_runs as f64),
            ));
        }
        let derived: Vec<(String, Json)> = self
            .derived
            .fields()
            .iter()
            .map(|&(name, v)| (name.to_string(), Json::Num(v)))
            .collect();
        fields.push(("derived".to_string(), Json::Obj(derived)));
        let fences: Vec<Json> = self
            .fences
            .iter()
            .map(|f| {
                Json::Obj(vec![
                    ("class".to_string(), Json::Str(f.class.clone())),
                    ("issued".to_string(), Json::Num(f.issued as f64)),
                    ("completed".to_string(), Json::Num(f.completed as f64)),
                    ("p50".to_string(), Json::Num(f.p50 as f64)),
                    ("p90".to_string(), Json::Num(f.p90 as f64)),
                    ("p99".to_string(), Json::Num(f.p99 as f64)),
                    ("max".to_string(), Json::Num(f.max as f64)),
                    ("mean".to_string(), Json::Num(f.mean)),
                ])
            })
            .collect();
        fields.push(("fence_latency".to_string(), Json::Arr(fences)));
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry missing string field `{k}`"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("entry missing integer field `{k}`"))
        };
        let mut e = MetricEntry::new(
            &str_field("section")?,
            &str_field("workload")?,
            &str_field("design")?,
        );
        e.runs = u64_field("runs")?;
        e.sim_cycles = u64_field("sim_cycles")?;
        e.instrs_retired = u64_field("instrs_retired")?;
        e.commits = u64_field("commits")?;
        e.aborts = u64_field("aborts")?;
        e.wall_ns = u64_field("wall_ns")?;
        e.task_wall_min_ns = u64_field("task_wall_min_ns")?;
        e.task_wall_max_ns = u64_field("task_wall_max_ns")?;
        // Optional (additive in v2): present only on native-runtime cells.
        e.ops = v.get("ops").and_then(Json::as_u64).unwrap_or(0);
        e.ns_per_op = v.get("ns_per_op").and_then(Json::as_f64).unwrap_or(0.0);
        // Optional (additive in v2): present only on analyzer cells.
        e.sites_discovered = v
            .get("sites_discovered")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        e.cycles_enumerated = v
            .get("cycles_enumerated")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        e.masks_pruned = v.get("masks_pruned").and_then(Json::as_u64).unwrap_or(0);
        e.oracle_runs = v.get("oracle_runs").and_then(Json::as_u64).unwrap_or(0);
        let derived = v
            .get("derived")
            .ok_or("entry missing `derived`".to_string())?;
        if let Json::Obj(fields) = derived {
            for (name, val) in fields {
                let val = val
                    .as_f64()
                    .ok_or_else(|| format!("derived field `{name}` is not a number"))?;
                if !e.derived.set_field(name, val) {
                    return Err(format!("unknown derived field `{name}` (schema drift)"));
                }
            }
        } else {
            return Err("`derived` is not an object".to_string());
        }
        for f in v
            .get("fence_latency")
            .and_then(Json::as_arr)
            .ok_or("entry missing `fence_latency`".to_string())?
        {
            let get_u = |k: &str| -> Result<u64, String> {
                f.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("fence_latency missing `{k}`"))
            };
            e.fences.push(FenceLatencySummary {
                class: f
                    .get("class")
                    .and_then(Json::as_str)
                    .ok_or("fence_latency missing `class`".to_string())?
                    .to_string(),
                issued: get_u("issued")?,
                completed: get_u("completed")?,
                p50: get_u("p50")?,
                p90: get_u("p90")?,
                p99: get_u("p99")?,
                max: get_u("max")?,
                mean: f
                    .get("mean")
                    .and_then(Json::as_f64)
                    .ok_or("fence_latency missing `mean`".to_string())?,
            });
        }
        Ok(e)
    }
}

fn per_sec(count: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        count as f64 * 1e9 / wall_ns as f64
    }
}

/// Machine-pool effectiveness counters (see the bench crate's pool
/// module): how often a run re-armed a warmed machine in place instead
/// of rebuilding its arenas. Harness metadata, not simulation output —
/// the values depend on how specs land on worker threads, so the
/// deterministic collection mode masks them to zero exactly like
/// wall-clock, and [`diff`] never gates on them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolTelemetry {
    /// Machines handed out by the pool.
    pub acquires: u64,
    /// Hand-outs satisfied by an in-place reset (pool hits).
    pub reuses: u64,
    /// Hand-outs that (re)built a machine from scratch.
    pub builds: u64,
    /// Arena bytes kept alive across in-place resets (estimate).
    pub bytes_reused: u64,
}

/// Sharded-sweep provenance attached to a merged snapshot (schema v3,
/// additive): how many shards produced the ledger the snapshot was
/// merged from, how many shard resumes the ledger recorded, and the
/// heartbeat cadence (cells per heartbeat record). Harness metadata like
/// [`PoolTelemetry`] — the *simulation* content of a merged snapshot is
/// independent of all three — so deterministic collection masks the
/// whole block away (`shard: None`) and [`diff`] never gates on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// Number of shards the grid was partitioned into.
    pub shards: u64,
    /// Shard resumes recorded across the ledger (0 = no crash/restart).
    pub resumes: u64,
    /// Heartbeat cadence: cells completed between heartbeat records.
    pub heartbeat_cells: u64,
}

/// A machine-readable harness-performance snapshot: metadata plus one
/// [`MetricEntry`] per (section, workload, design) cell. Written as
/// `BENCH_<label>.json` style files by `--metrics PATH` and compared by
/// `perfdiff`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchSnapshot {
    /// Snapshot label (usually the metrics file stem or a git sha).
    pub label: String,
    /// Wall/RSS fields were masked to 0 at collection time.
    pub deterministic: bool,
    /// The run used the `--quick` grid.
    pub quick: bool,
    /// Native fence backend (`native_bench` snapshots only: the
    /// `FenceBackend` label; `None` and omitted for simulator runs).
    pub backend: Option<String>,
    /// Sharded-sweep provenance (merged-ledger snapshots only; `None`
    /// and omitted — with the schema staying at v2 — everywhere else,
    /// including all deterministic-mode snapshots).
    pub shard: Option<ShardTelemetry>,
    /// Total harness wall-clock, ns (0 in deterministic mode).
    pub total_wall_ns: u64,
    /// Peak process RSS in bytes (0 in deterministic mode or off-Linux).
    pub peak_rss_bytes: u64,
    /// Machine-pool counters (all 0 in deterministic mode).
    pub pool: PoolTelemetry,
    /// Per-phase wall-clock `(phase, ns)` in first-entry order (ns are 0
    /// in deterministic mode).
    pub phases: Vec<(String, u64)>,
    /// The metric cells, in first-appearance order.
    pub entries: Vec<MetricEntry>,
}

impl BenchSnapshot {
    /// An empty snapshot with the given label.
    pub fn new(label: &str) -> Self {
        BenchSnapshot {
            label: label.to_string(),
            ..Default::default()
        }
    }

    /// Looks an entry up by key.
    pub fn entry(&self, section: &str, workload: &str, design: &str) -> Option<&MetricEntry> {
        self.entries
            .iter()
            .find(|e| e.section == section && e.workload == workload && e.design == design)
    }

    /// Distinct section names, in first-appearance order.
    pub fn sections(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.entries {
            if !out.contains(&e.section.as_str()) {
                out.push(&e.section);
            }
        }
        out
    }

    /// Serializes the snapshot as pretty-printed JSON. Deterministic:
    /// equal snapshots are equal bytes.
    pub fn to_json(&self) -> String {
        // The shard block is the only v3 feature, so shard-free
        // snapshots keep writing v2 and their bytes never move.
        let schema = if self.shard.is_some() {
            SCHEMA_VERSION
        } else {
            MIN_SCHEMA_VERSION
        };
        let mut fields = vec![
            ("schema".to_string(), Json::Num(schema as f64)),
            ("label".to_string(), Json::Str(self.label.clone())),
            ("deterministic".to_string(), Json::Bool(self.deterministic)),
            ("quick".to_string(), Json::Bool(self.quick)),
        ];
        // Additive in v2: only native_bench snapshots carry a backend,
        // so simulator snapshots stay byte-identical to older builds.
        if let Some(b) = &self.backend {
            fields.push(("backend".to_string(), Json::Str(b.clone())));
        }
        // Additive in v3: only merged sharded-sweep snapshots carry
        // shard provenance.
        if let Some(s) = &self.shard {
            fields.push((
                "shard".to_string(),
                Json::Obj(vec![
                    ("shards".to_string(), Json::Num(s.shards as f64)),
                    ("resumes".to_string(), Json::Num(s.resumes as f64)),
                    (
                        "heartbeat_cells".to_string(),
                        Json::Num(s.heartbeat_cells as f64),
                    ),
                ]),
            ));
        }
        fields.extend([
            (
                "total_wall_ns".to_string(),
                Json::Num(self.total_wall_ns as f64),
            ),
            (
                "peak_rss_bytes".to_string(),
                Json::Num(self.peak_rss_bytes as f64),
            ),
            (
                "pool".to_string(),
                Json::Obj(vec![
                    (
                        "acquires".to_string(),
                        Json::Num(self.pool.acquires as f64),
                    ),
                    ("reuses".to_string(), Json::Num(self.pool.reuses as f64)),
                    ("builds".to_string(), Json::Num(self.pool.builds as f64)),
                    (
                        "bytes_reused".to_string(),
                        Json::Num(self.pool.bytes_reused as f64),
                    ),
                ]),
            ),
            (
                "phases".to_string(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|(name, ns)| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(name.clone())),
                                ("wall_ns".to_string(), Json::Num(*ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "entries".to_string(),
                Json::Arr(self.entries.iter().map(MetricEntry::to_json).collect()),
            ),
        ]);
        Json::Obj(fields).render()
    }

    /// Parses a snapshot previously written by [`BenchSnapshot::to_json`].
    pub fn parse(s: &str) -> Result<Self, String> {
        let v = Json::parse(s)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("snapshot missing `schema`".to_string())?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(format!(
                "schema version mismatch: file has {schema}, this build expects \
                 {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}"
            ));
        }
        let mut snap = BenchSnapshot::new(
            v.get("label")
                .and_then(Json::as_str)
                .ok_or("snapshot missing `label`".to_string())?,
        );
        snap.deterministic = v
            .get("deterministic")
            .and_then(Json::as_bool)
            .ok_or("snapshot missing `deterministic`".to_string())?;
        snap.quick = v
            .get("quick")
            .and_then(Json::as_bool)
            .ok_or("snapshot missing `quick`".to_string())?;
        snap.backend = v
            .get("backend")
            .and_then(Json::as_str)
            .map(str::to_string);
        if let Some(s) = v.get("shard") {
            let shard_u = |name: &str| -> Result<u64, String> {
                s.get(name)
                    .and_then(Json::as_u64)
                    .ok_or(format!("shard missing `{name}`"))
            };
            snap.shard = Some(ShardTelemetry {
                shards: shard_u("shards")?,
                resumes: shard_u("resumes")?,
                heartbeat_cells: shard_u("heartbeat_cells")?,
            });
        }
        snap.total_wall_ns = v
            .get("total_wall_ns")
            .and_then(Json::as_u64)
            .ok_or("snapshot missing `total_wall_ns`".to_string())?;
        snap.peak_rss_bytes = v
            .get("peak_rss_bytes")
            .and_then(Json::as_u64)
            .ok_or("snapshot missing `peak_rss_bytes`".to_string())?;
        let pool = v.get("pool").ok_or("snapshot missing `pool`".to_string())?;
        let pool_u = |name: &str| -> Result<u64, String> {
            pool.get(name)
                .and_then(Json::as_u64)
                .ok_or(format!("pool missing `{name}`"))
        };
        snap.pool = PoolTelemetry {
            acquires: pool_u("acquires")?,
            reuses: pool_u("reuses")?,
            builds: pool_u("builds")?,
            bytes_reused: pool_u("bytes_reused")?,
        };
        for p in v
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("snapshot missing `phases`".to_string())?
        {
            snap.phases.push((
                p.get("name")
                    .and_then(Json::as_str)
                    .ok_or("phase missing `name`".to_string())?
                    .to_string(),
                p.get("wall_ns")
                    .and_then(Json::as_u64)
                    .ok_or("phase missing `wall_ns`".to_string())?,
            ));
        }
        for e in v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("snapshot missing `entries`".to_string())?
        {
            snap.entries.push(MetricEntry::from_json(e)?);
        }
        Ok(snap)
    }
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

/// Thresholds for [`diff`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Allowed relative wall-clock drift (0.5 = ±50%). Wall comparisons
    /// are skipped when either side is 0 (deterministic-mode snapshots).
    pub wall_tolerance: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions { wall_tolerance: 0.5 }
    }
}

/// The outcome of comparing two snapshots.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Regressions / drifts that breach the thresholds. Empty = clean.
    pub breaches: Vec<String>,
    /// Informational deltas (within thresholds, or not gated at all).
    pub notes: Vec<String>,
    /// Entries compared key-by-key.
    pub compared: usize,
}

impl DiffReport {
    /// True when nothing breached.
    pub fn clean(&self) -> bool {
        self.breaches.is_empty()
    }
}

fn f64_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Compares `new` against `base`: exact on every simulation counter,
/// derived ratio and fence percentile (these are deterministic, so *any*
/// drift is a behaviour change), threshold-gated on wall-clock (skipped
/// when masked to 0), and strict on key alignment — a missing or extra
/// (section, workload, design) cell is schema/coverage drift and fails.
pub fn diff(base: &BenchSnapshot, new: &BenchSnapshot, opts: &DiffOptions) -> DiffReport {
    let mut r = DiffReport::default();
    for e in &base.entries {
        let key = format!("{}/{}/{}", e.section, e.workload, e.design);
        let Some(n) = new.entry(&e.section, &e.workload, &e.design) else {
            r.breaches.push(format!("{key}: missing from new snapshot"));
            continue;
        };
        r.compared += 1;
        let mut exact = |name: &str, a: u64, b: u64| {
            if a != b {
                r.breaches
                    .push(format!("{key}: {name} changed {a} -> {b}"));
            }
        };
        exact("runs", e.runs, n.runs);
        exact("sim_cycles", e.sim_cycles, n.sim_cycles);
        exact("instrs_retired", e.instrs_retired, n.instrs_retired);
        exact("commits", e.commits, n.commits);
        exact("aborts", e.aborts, n.aborts);
        exact("ops", e.ops, n.ops);
        for (&(name, a), &(_, b)) in e.derived.fields().iter().zip(n.derived.fields().iter()) {
            if !f64_close(a, b) {
                r.breaches
                    .push(format!("{key}: derived.{name} changed {a} -> {b}"));
            }
        }
        let classes: Vec<&str> = e.fences.iter().map(|f| f.class.as_str()).collect();
        let new_classes: Vec<&str> = n.fences.iter().map(|f| f.class.as_str()).collect();
        if classes != new_classes {
            r.breaches.push(format!(
                "{key}: fence classes changed {classes:?} -> {new_classes:?}"
            ));
        } else {
            for (a, b) in e.fences.iter().zip(&n.fences) {
                let mut fex = |name: &str, x: u64, y: u64| {
                    if x != y {
                        r.breaches.push(format!(
                            "{key}: fence {}.{name} changed {x} -> {y}",
                            a.class
                        ));
                    }
                };
                fex("issued", a.issued, b.issued);
                fex("completed", a.completed, b.completed);
                fex("p50", a.p50, b.p50);
                fex("p90", a.p90, b.p90);
                fex("p99", a.p99, b.p99);
                fex("max", a.max, b.max);
                if !f64_close(a.mean, b.mean) {
                    r.breaches.push(format!(
                        "{key}: fence {}.mean changed {} -> {}",
                        a.class, a.mean, b.mean
                    ));
                }
            }
        }
        wall_delta(&mut r, &key, e.wall_ns, n.wall_ns, opts.wall_tolerance);
        // Native per-op wall-clock is machine noise like total wall, but
        // scheduling-sensitive enough that it is never gated.
        if e.ns_per_op > 0.0 && n.ns_per_op > 0.0 && !f64_close(e.ns_per_op, n.ns_per_op) {
            r.notes.push(format!(
                "{key}: ns_per_op {:.1} -> {:.1} (not gated)",
                e.ns_per_op, n.ns_per_op
            ));
        }
    }
    for n in &new.entries {
        if base.entry(&n.section, &n.workload, &n.design).is_none() {
            r.breaches.push(format!(
                "{}/{}/{}: not present in base snapshot",
                n.section, n.workload, n.design
            ));
        }
    }
    wall_delta(
        &mut r,
        "total",
        base.total_wall_ns,
        new.total_wall_ns,
        opts.wall_tolerance,
    );
    if base.backend != new.backend {
        r.notes.push(format!(
            "fence backend {:?} -> {:?} (not gated)",
            base.backend, new.backend
        ));
    }
    if base.shard != new.shard {
        r.notes.push(format!(
            "shard provenance {:?} -> {:?} (not gated)",
            base.shard, new.shard
        ));
    }
    if base.peak_rss_bytes > 0 && new.peak_rss_bytes > 0 {
        r.notes.push(format!(
            "peak RSS {} -> {} bytes (not gated)",
            base.peak_rss_bytes, new.peak_rss_bytes
        ));
    }
    r
}

fn wall_delta(r: &mut DiffReport, key: &str, base: u64, new: u64, tol: f64) {
    if base == 0 || new == 0 {
        return; // masked (deterministic mode) on at least one side
    }
    let rel = (new as f64 - base as f64) / base as f64;
    let line = format!(
        "{key}: wall {} -> {} ({:+.1}%)",
        human_ns(base),
        human_ns(new),
        100.0 * rel
    );
    if rel.abs() > tol {
        r.breaches.push(line);
    } else {
        r.notes.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let src = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": 2.5, "e": -3}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(2.5));
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("treu").is_err());
    }

    #[test]
    fn numbers_render_integers_without_point() {
        let mut s = String::new();
        render_num(&mut s, 42.0);
        assert_eq!(s, "42");
        s.clear();
        render_num(&mut s, 2.5);
        assert_eq!(s, "2.5");
        s.clear();
        render_num(&mut s, f64::NAN);
        assert_eq!(s, "0");
    }

    fn sample_snapshot() -> BenchSnapshot {
        let mut snap = BenchSnapshot::new("unit");
        snap.quick = true;
        snap.phases.push(("run".to_string(), 1_000_000));
        let mut e = MetricEntry::new("fig08", "fib", "WS+");
        e.runs = 3;
        e.sim_cycles = 120_000;
        e.instrs_retired = 50_000;
        e.wall_ns = 2_000_000_000;
        e.derived.fence_stall_fraction = 0.25;
        e.fences.push(FenceLatencySummary {
            class: "wf".to_string(),
            issued: 10,
            completed: 10,
            p50: 3,
            p90: 7,
            p99: 7,
            max: 6,
            mean: 3.2,
        });
        snap.entries.push(e);
        snap.total_wall_ns = 2_000_000_000;
        snap
    }

    #[test]
    fn snapshot_round_trips_byte_exactly() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let parsed = BenchSnapshot::parse(&json).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_json(), json, "render -> parse -> render is a fixpoint");
    }

    #[test]
    fn native_fields_round_trip_and_stay_out_of_sim_snapshots() {
        // Simulator snapshots must not grow the optional native keys.
        let sim = sample_snapshot();
        let sim_json = sim.to_json();
        assert!(!sim_json.contains("\"backend\""));
        assert!(!sim_json.contains("\"ops\""));
        assert!(!sim_json.contains("\"ns_per_op\""));

        // Native snapshots round-trip them byte-exactly.
        let mut snap = sample_snapshot();
        snap.backend = Some("membarrier".to_string());
        snap.entries[0].ops = 4_000;
        snap.entries[0].ns_per_op = 37.5;
        let json = snap.to_json();
        let parsed = BenchSnapshot::parse(&json).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.to_json(), json);

        // ops is gated exactly; ns_per_op and backend only produce notes.
        let mut drifted = snap.clone();
        drifted.entries[0].ops += 1;
        drifted.entries[0].ns_per_op = 99.0;
        drifted.backend = Some("seqcst-fallback".to_string());
        let r = diff(&snap, &drifted, &DiffOptions::default());
        assert_eq!(r.breaches.len(), 1, "{:?}", r.breaches);
        assert!(r.breaches[0].contains("ops"), "{:?}", r.breaches);
        assert!(r.notes.iter().any(|n| n.contains("ns_per_op")));
        assert!(r.notes.iter().any(|n| n.contains("backend")));
    }

    #[test]
    fn snapshot_rejects_schema_drift() {
        let json = sample_snapshot().to_json().replace("\"schema\": 2", "\"schema\": 999");
        let err = BenchSnapshot::parse(&json).unwrap_err();
        assert!(err.contains("schema version mismatch"), "{err}");
    }

    #[test]
    fn shard_block_is_additive_and_bumps_schema() {
        // Shard-free snapshots keep writing schema v2 with no shard key
        // — this is what holds the checked-in baseline byte-identical.
        let plain = sample_snapshot();
        let plain_json = plain.to_json();
        assert!(plain_json.contains("\"schema\": 2"));
        assert!(!plain_json.contains("\"shard\""));

        // Merged sharded snapshots carry the block and schema v3, and
        // round-trip byte-exactly.
        let mut sharded = sample_snapshot();
        sharded.shard = Some(ShardTelemetry {
            shards: 3,
            resumes: 1,
            heartbeat_cells: 8,
        });
        let json = sharded.to_json();
        assert!(json.contains("\"schema\": 3"));
        let parsed = BenchSnapshot::parse(&json).unwrap();
        assert_eq!(parsed, sharded);
        assert_eq!(parsed.to_json(), json);

        // Shard drift is provenance, not behaviour: note, never breach.
        let r = diff(&plain, &sharded, &DiffOptions::default());
        assert!(r.clean(), "{:?}", r.breaches);
        assert!(r.notes.iter().any(|n| n.contains("shard provenance")));
    }

    #[test]
    fn render_compact_is_single_line_and_parses_back() {
        let v = Json::Obj(vec![
            ("v".to_string(), Json::Num(1.0)),
            ("kind".to_string(), Json::Str("heartbeat".to_string())),
            (
                "xs".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null]),
            ),
            ("obj".to_string(), Json::Obj(vec![])),
        ]);
        let line = v.render_compact();
        assert_eq!(line, r#"{"v":1,"kind":"heartbeat","xs":[1,true,null],"obj":{}}"#);
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn diff_is_clean_on_equal_snapshots() {
        let a = sample_snapshot();
        let r = diff(&a, &a.clone(), &DiffOptions::default());
        assert!(r.clean(), "{:?}", r.breaches);
        assert_eq!(r.compared, 1);
    }

    #[test]
    fn diff_catches_counter_and_key_drift() {
        let a = sample_snapshot();
        let mut b = a.clone();
        b.entries[0].sim_cycles += 1;
        let r = diff(&a, &b, &DiffOptions::default());
        assert!(!r.clean());
        assert!(r.breaches[0].contains("sim_cycles"), "{:?}", r.breaches);

        let mut c = a.clone();
        c.entries[0].design = "W+".to_string();
        let r = diff(&a, &c, &DiffOptions::default());
        assert_eq!(r.breaches.len(), 2, "one missing + one extra: {:?}", r.breaches);
    }

    #[test]
    fn diff_gates_wall_clock_with_tolerance() {
        let a = sample_snapshot();
        let mut b = a.clone();
        b.entries[0].wall_ns = a.entries[0].wall_ns * 2; // +100% > ±50%
        b.total_wall_ns = a.total_wall_ns; // keep total clean
        let r = diff(&a, &b, &DiffOptions::default());
        assert_eq!(r.breaches.len(), 1);
        assert!(r.breaches[0].contains("wall"), "{:?}", r.breaches);
        // Within tolerance: note, not breach.
        b.entries[0].wall_ns = a.entries[0].wall_ns + a.entries[0].wall_ns / 4;
        assert!(diff(&a, &b, &DiffOptions::default()).clean());
        // Masked on one side: skipped entirely.
        b.entries[0].wall_ns = 0;
        assert!(diff(&a, &b, &DiffOptions::default()).clean());
    }

    #[test]
    fn diff_catches_fence_percentile_drift() {
        let a = sample_snapshot();
        let mut b = a.clone();
        b.entries[0].fences[0].p99 = 99;
        let r = diff(&a, &b, &DiffOptions::default());
        assert!(!r.clean());
        assert!(r.breaches[0].contains("wf.p99"), "{:?}", r.breaches);
    }

    #[test]
    fn phase_timer_accumulates_by_name() {
        let mut t = PhaseTimer::new();
        t.enter("a");
        t.enter("b");
        t.enter("a");
        t.finish();
        let names: Vec<&str> = t.phases().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b"], "re-entry accumulates, order is first-entry");
    }

    #[test]
    fn human_ns_scales() {
        assert_eq!(human_ns(5_000_000), "5ms");
        assert_eq!(human_ns(2_500_000_000), "2.5s");
        assert_eq!(human_ns(125_000_000_000), "2m05s");
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        // On Linux this must produce a sane nonzero value; elsewhere None.
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss > 1024 * 1024, "peak RSS under 1 MiB is implausible: {rss}");
        }
    }
}
