//! Small utility containers: a bounded FIFO used for write buffers, MSHR
//! queues and link queues.

use std::collections::VecDeque;

/// A FIFO queue with a hard capacity.
///
/// # Examples
///
/// ```
/// use asymfence_common::queue::BoundedQueue;
/// let mut q = BoundedQueue::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.push(3), Err(3)); // full: value handed back
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BoundedQueue capacity must be nonzero");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends an item.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (ownership handed back) if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(item);
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable access to the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterates mutably, oldest-first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

    /// Removes every item, newest included.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Retains only items matching the predicate (order preserved).
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.items.retain(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(3);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.push("c").unwrap();
        assert!(q.is_full());
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        q.push("d").unwrap();
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.pop(), Some("d"));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_full_returns_item() {
        let mut q = BoundedQueue::new(1);
        q.push(10).unwrap();
        assert_eq!(q.push(11), Err(11));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn front_and_retain() {
        let mut q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        assert_eq!(q.front(), Some(&0));
        q.retain(|&x| x % 2 == 0);
        let left: Vec<i32> = q.iter().copied().collect();
        assert_eq!(left, [0, 2, 4]);
        *q.front_mut().unwrap() = 100;
        assert_eq!(q.pop(), Some(100));
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
