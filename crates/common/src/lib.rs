//! Shared vocabulary types for the `asymfence` simulator workspace.
//!
//! This crate holds the types that every layer of the stack speaks:
//! addresses and identifiers ([`ids`]), the machine configuration
//! ([`config`]), per-site fence-strength assignments ([`assign`]),
//! inferred whole-program fence placements ([`placement`]),
//! statistics counters ([`stats`]), deterministic
//! fence-lifecycle tracing ([`trace`]), harness telemetry — wall-clock
//! timers, metrics snapshots and the `perfdiff` engine ([`telemetry`]) —
//! a deterministic RNG ([`rng`]), schedule oracles that surface the
//! simulator's nondeterminism points ([`schedule`]), a hermetic
//! property-testing harness
//! ([`prop`]), scoped worker-pool parallelism for deterministic sweeps
//! ([`par`]), the sharded-sweep run-ledger record layer ([`ledger`])
//! and small utility containers ([`queue`]).
//!
//! # Examples
//!
//! ```
//! use asymfence_common::config::MachineConfig;
//! use asymfence_common::ids::{Addr, LineAddr};
//!
//! let cfg = MachineConfig::default();
//! assert_eq!(cfg.num_cores, 8);
//! let a = Addr::new(0x1040);
//! let line = LineAddr::containing(a, cfg.line_bytes);
//! assert_eq!(line.base(cfg.line_bytes).raw(), 0x1040);
//! ```

#![deny(missing_docs)]

pub mod assign;
pub mod config;
pub mod hash;
pub mod ids;
pub mod ledger;
pub mod par;
pub mod placement;
pub mod prop;
pub mod queue;
pub mod rng;
pub mod schedule;
pub mod scvlog;
pub mod stats;
pub mod telemetry;
pub mod trace;

pub use assign::{is_synthetic, synthetic_site, FenceAssignment, SearchStats, SiteStrength};
pub use config::{FenceDesign, MachineConfig, MachineConfigBuilder, Perturbation};
pub use placement::{PlacedFence, PlacedWindow, Placement, PlacementSpec, MAX_PLACED};
pub use ids::{Addr, BankId, CoreId, Cycle, LineAddr, WordIdx};
pub use rng::SimRng;
pub use schedule::{
    ChoiceKind, ChoicePoint, ChoiceRecord, SchedulePlan, ScheduleOracle, ScheduleQuanta,
    ScheduleRecording, ScheduleScript, ScriptOracle, SeededJitter,
};
pub use scvlog::{ScvEvent, ScvLog};
pub use stats::{CoreStats, DerivedStats, MachineStats, StallKind};
pub use telemetry::{BenchSnapshot, MetricEntry, PhaseTimer, PoolTelemetry, Stopwatch};
pub use trace::{FenceClass, FenceSpan, FenceTally, TraceEvent, TraceKind, TraceSink};
