//! Deterministic, cheap hashing for the simulator's hot maps.
//!
//! `std`'s default `HashMap` hasher (SipHash with a per-process random
//! key) shows up prominently in simulator profiles: the coherence layer
//! keys MSHRs, pending stores and directory lines by [`LineAddr`]-style
//! small integers, where SipHash's full 64-bit security margin buys
//! nothing. [`FxHasher`] is the classic Firefox multiply-xor hash:
//! one rotate, one xor and one multiply per word, quality enough for
//! power-of-two-capacity tables keyed by addresses and ids.
//!
//! Determinism matters as much as speed here. A random per-process key
//! means map *iteration order* differs between processes; every map in
//! the simulator's hot path is keyed lookup only, but a fixed-key hasher
//! removes the hazard class outright — two runs of the same binary walk
//! every table identically, which the byte-identical output gates rely
//! on.
//!
//! [`LineAddr`]: crate::ids::Addr

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply constant (golden-ratio derived, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed-key multiply-xor hasher ("Fx hash"). Not DoS-resistant — use
/// only for maps keyed by simulator-internal values (addresses, ids,
/// tokens), never attacker-controlled input.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds [`FxHasher`]s with the fixed key (every hasher starts equal,
/// so table layout is a pure function of the inserted keys).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` on the deterministic [`FxHasher`]. Construct with
/// `FxHashMap::default()`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` on the deterministic [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal_and_distinct_keys_spread() {
        let h = |n: u64| {
            let mut x = FxHasher::default();
            x.write_u64(n);
            x.finish()
        };
        assert_eq!(h(42), h(42), "fixed key: same input, same hash");
        let hashes: FxHashSet<u64> = (0..1000u64).map(h).collect();
        assert_eq!(hashes.len(), 1000, "no collisions on small sequential keys");
    }

    #[test]
    fn byte_writes_match_padded_words() {
        // chunks <= 8 bytes are zero-padded into one word; a 1-byte
        // write must differ from a 2-byte write of the same prefix.
        let mut a = FxHasher::default();
        a.write(&[1]);
        let mut b = FxHasher::default();
        b.write(&[1, 0]);
        assert_eq!(a.finish(), b.finish(), "zero padding is part of the scheme");
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(9, "nine");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.remove(&9), Some("nine"));
        assert!(m.remove(&9).is_none());
    }
}
