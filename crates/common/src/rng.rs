//! Deterministic random numbers for workloads and the exploration engine.
//!
//! The simulator itself is fully deterministic; workloads use [`SimRng`]
//! for stochastic decisions (transaction mixes, task sizes) so that a given
//! seed reproduces a run cycle-for-cycle. The generator is an in-repo
//! xoshiro256** seeded through a SplitMix64 stream — no external crates,
//! so the whole workspace builds offline and a seed printed by the
//! schedule explorer reproduces forever, independent of dependency
//! versions. Golden-value tests below pin the exact streams.

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function for
/// deriving deterministic per-item parameters (task sizes, spawn shapes,
/// perturbation delays).
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes several values into one seed (order-sensitive), for deriving
/// independent deterministic streams from (seed, stream, event) tuples.
pub fn mix64(parts: &[u64]) -> u64 {
    let mut acc = 0x517C_C1B7_2722_0A95_u64;
    for &p in parts {
        acc = hash64(acc ^ p);
    }
    acc
}

/// A seeded, cheap, deterministic RNG (xoshiro256**).
///
/// # Examples
///
/// ```
/// use asymfence_common::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a seed, expanding it with SplitMix64 so that
    /// nearby seeds yield uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 sequence (state increments by the golden gamma, then
        // finalizes) — the reference seeding procedure for xoshiro.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Derives an independent child stream, e.g. one per thread.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(s)
    }

    /// Next raw 64-bit value (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via the widening-multiply reduction
    /// (bias below 2⁻⁶⁴ for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Picks an index according to integer weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "weighted() needs a positive total weight");
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_mixes() {
        assert_ne!(hash64(0), 0);
        assert_ne!(hash64(1), hash64(2));
        // Avalanche sanity: flipping one input bit changes many output bits.
        let d = (hash64(42) ^ hash64(43)).count_ones();
        assert!(d > 16, "poor mixing: {d} bits");
    }

    #[test]
    fn hash64_golden_values() {
        // SplitMix64 reference output for seed 0.
        assert_eq!(hash64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(hash64(0), 16294208416658607535);
    }

    #[test]
    fn mix64_is_order_sensitive() {
        assert_ne!(mix64(&[1, 2]), mix64(&[2, 1]));
        assert_eq!(mix64(&[1, 2]), mix64(&[1, 2]));
        assert_ne!(mix64(&[]), mix64(&[0]));
    }

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // Golden values pin the exact generator streams: the explorer persists
    // bare seeds, so these streams must never change.
    #[test]
    fn next_u64_golden_values() {
        let mut r = SimRng::new(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532,
            ]
        );
        let mut r = SimRng::new(2015);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                15884579172074877358,
                10649050805077927697,
                15490298832268373387,
                3895344929837023606,
            ]
        );
    }

    #[test]
    fn below_golden_values() {
        let mut r = SimRng::new(42);
        let got: Vec<u64> = (0..6).map(|_| r.below(10)).collect();
        assert_eq!(got, vec![0, 3, 6, 9, 9, 7]);
    }

    #[test]
    fn weighted_golden_values() {
        let mut r = SimRng::new(42);
        let got: Vec<usize> = (0..6).map(|_| r.weighted(&[1, 3, 4])).collect();
        assert_eq!(got, vec![0, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn fork_golden_values() {
        let mut root = SimRng::new(42);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.next_u64(), 957964351160264821);
        assert_eq!(c2.next_u64(), 1112608787296227110);
    }

    #[test]
    fn forked_streams_differ_by_salt() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(2);
        let s1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn below_in_bounds() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn range_full_domain() {
        let mut r = SimRng::new(3);
        // Must not overflow on the full u64 range.
        let _ = r.range(0, u64::MAX);
        let _ = r.range(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut r = SimRng::new(1);
        for _ in 0..500 {
            let i = r.weighted(&[0, 5, 0, 5]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_roughly_proportional() {
        let mut r = SimRng::new(9);
        let mut counts = [0u64; 2];
        for _ in 0..10_000 {
            counts[r.weighted(&[1, 3])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&frac), "frac={frac}");
    }
}
