//! Deterministic random numbers for workloads.
//!
//! The simulator itself is fully deterministic; workloads use [`SimRng`]
//! for stochastic decisions (transaction mixes, task sizes) so that a given
//! seed reproduces a run cycle-for-cycle.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function for
/// deriving deterministic per-item parameters (task sizes, spawn shapes).
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, cheap, deterministic RNG.
///
/// # Examples
///
/// ```
/// use asymfence_common::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream, e.g. one per thread.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(s)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }

    /// Uniform value in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Picks an index according to integer weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "weighted() needs a positive total weight");
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_mixes() {
        assert_ne!(hash64(0), 0);
        assert_ne!(hash64(1), hash64(2));
        // Avalanche sanity: flipping one input bit changes many output bits.
        let d = (hash64(42) ^ hash64(43)).count_ones();
        assert!(d > 16, "poor mixing: {d} bits");
    }

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ_by_salt() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(2);
        let s1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn below_in_bounds() {
        let mut r = SimRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SimRng::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut r = SimRng::new(1);
        for _ in 0..500 {
            let i = r.weighted(&[0, 5, 0, 5]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_roughly_proportional() {
        let mut r = SimRng::new(9);
        let mut counts = [0u64; 2];
        for _ in 0..10_000 {
            counts[r.weighted(&[1, 3])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&frac), "frac={frac}");
    }
}
