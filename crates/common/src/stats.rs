//! Statistics counters.
//!
//! Every quantity the paper's evaluation reports is collected here:
//! per-core cycle breakdowns (busy / fence stall / other stall, Figures
//! 8, 10, 11), fence frequencies and Bypass-Set occupancies, bounce and
//! retry counts, network traffic (Table 4), W+ recoveries, and Wee
//! wf→sf conversions.

use std::fmt;
use std::ops::AddAssign;

/// How a core spent one retirement cycle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StallKind {
    /// Retired at least one instruction this cycle.
    Busy,
    /// Retirement blocked by an incomplete fence (fence at ROB head, or a
    /// load held back by a pending fence).
    Fence,
    /// Retirement blocked for any other reason (cache miss, full write
    /// buffer, empty ROB while fetch waits on memory, …).
    Other,
    /// The thread has finished its program.
    Idle,
}

/// Counters for a single core.
///
/// All fields are plain integers, so the struct is `Copy` and a run's
/// stats harvest is a memcpy rather than a clone.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoreStats {
    /// Cycles in which at least one instruction retired.
    pub busy_cycles: u64,
    /// Cycles stalled on a fence.
    pub fence_stall_cycles: u64,
    /// Cycles stalled for other reasons.
    pub other_stall_cycles: u64,
    /// Cycles after the program completed.
    pub idle_cycles: u64,
    /// Dynamic instructions retired (loads, stores, fences, RMWs, and each
    /// cycle of `Compute`).
    pub instrs_retired: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Atomic read-modify-writes retired.
    pub rmws: u64,
    /// Strong fences executed (after any design-driven mapping).
    pub sf_count: u64,
    /// Weak fences executed.
    pub wf_count: u64,
    /// Weak fences that the Wee design demoted to strong because their
    /// global state spanned more than one directory bank.
    pub wee_demotions: u64,
    /// Sum over completed wfs of the number of distinct line addresses the
    /// Bypass Set held (divide by `wf_count` for the Table 4 average).
    pub bs_lines_sum: u64,
    /// Peak Bypass-Set occupancy observed.
    pub bs_peak: u64,
    /// wfs whose Bypass Set overflowed (fence degraded to strong).
    pub bs_overflows: u64,
    /// Write transactions from this core that were bounced at least once.
    pub writes_bounced: u64,
    /// Total bounce NACKs received by this core's write transactions.
    pub bounce_retries: u64,
    /// Order transactions this core completed.
    pub order_ops: u64,
    /// Conditional-Order attempts that failed on a true-sharing match.
    pub cond_order_failures: u64,
    /// Conditional-Order attempts that completed.
    pub cond_order_successes: u64,
    /// W+ rollback recoveries performed.
    pub recoveries: u64,
    /// Speculative loads squashed by conflicting invalidations.
    pub load_squashes: u64,
    /// Post-fence loads that retired early (before their wf completed).
    pub early_retired_loads: u64,
    /// Post-fence accesses stalled by a Wee RemotePS hit.
    pub remote_ps_stalls: u64,
    /// L1 load/store misses.
    pub l1_misses: u64,
    /// L1 hits.
    pub l1_hits: u64,
}

impl CoreStats {
    /// Total simulated cycles this core was accounted for.
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.fence_stall_cycles + self.other_stall_cycles + self.idle_cycles
    }

    /// Records one retirement-cycle classification.
    pub fn record_cycle(&mut self, kind: StallKind) {
        self.record_cycles(kind, 1);
    }

    /// Records `n` consecutive retirement cycles of the same
    /// classification — the bulk path the event-driven kernel uses when
    /// it skips over a provably inactive stretch.
    pub fn record_cycles(&mut self, kind: StallKind, n: u64) {
        match kind {
            StallKind::Busy => self.busy_cycles += n,
            StallKind::Fence => self.fence_stall_cycles += n,
            StallKind::Other => self.other_stall_cycles += n,
            StallKind::Idle => self.idle_cycles += n,
        }
    }

    /// Fences per 1000 retired instructions, as in Table 4.
    pub fn fences_per_kilo_instr(&self) -> f64 {
        if self.instrs_retired == 0 {
            return 0.0;
        }
        1000.0 * (self.sf_count + self.wf_count) as f64 / self.instrs_retired as f64
    }

    /// Average Bypass-Set line count per weak fence.
    pub fn avg_bs_lines(&self) -> f64 {
        if self.wf_count == 0 {
            return 0.0;
        }
        self.bs_lines_sum as f64 / self.wf_count as f64
    }

    /// Number of counters (array length of [`CoreStats::values`]).
    pub const FIELDS: usize = 25;

    /// Every counter as a fixed-size array in declaration order — the
    /// wire form the sweep run ledger persists a core as. The order is
    /// the same one `AddAssign` folds in; [`CoreStats::from_values`]
    /// inverts it exactly.
    pub fn values(&self) -> [u64; Self::FIELDS] {
        [
            self.busy_cycles,
            self.fence_stall_cycles,
            self.other_stall_cycles,
            self.idle_cycles,
            self.instrs_retired,
            self.loads,
            self.stores,
            self.rmws,
            self.sf_count,
            self.wf_count,
            self.wee_demotions,
            self.bs_lines_sum,
            self.bs_peak,
            self.bs_overflows,
            self.writes_bounced,
            self.bounce_retries,
            self.order_ops,
            self.cond_order_failures,
            self.cond_order_successes,
            self.recoveries,
            self.load_squashes,
            self.early_retired_loads,
            self.remote_ps_stalls,
            self.l1_misses,
            self.l1_hits,
        ]
    }

    /// Rebuilds a core from a [`CoreStats::values`] array. `None` when
    /// the slice has the wrong length (ledger written by a build with a
    /// different counter set — record-level schema drift).
    pub fn from_values(vals: &[u64]) -> Option<CoreStats> {
        if vals.len() != Self::FIELDS {
            return None;
        }
        Some(CoreStats {
            busy_cycles: vals[0],
            fence_stall_cycles: vals[1],
            other_stall_cycles: vals[2],
            idle_cycles: vals[3],
            instrs_retired: vals[4],
            loads: vals[5],
            stores: vals[6],
            rmws: vals[7],
            sf_count: vals[8],
            wf_count: vals[9],
            wee_demotions: vals[10],
            bs_lines_sum: vals[11],
            bs_peak: vals[12],
            bs_overflows: vals[13],
            writes_bounced: vals[14],
            bounce_retries: vals[15],
            order_ops: vals[16],
            cond_order_failures: vals[17],
            cond_order_successes: vals[18],
            recoveries: vals[19],
            load_squashes: vals[20],
            early_retired_loads: vals[21],
            remote_ps_stalls: vals[22],
            l1_misses: vals[23],
            l1_hits: vals[24],
        })
    }
}

impl AddAssign<&CoreStats> for CoreStats {
    fn add_assign(&mut self, rhs: &CoreStats) {
        self.busy_cycles += rhs.busy_cycles;
        self.fence_stall_cycles += rhs.fence_stall_cycles;
        self.other_stall_cycles += rhs.other_stall_cycles;
        self.idle_cycles += rhs.idle_cycles;
        self.instrs_retired += rhs.instrs_retired;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.rmws += rhs.rmws;
        self.sf_count += rhs.sf_count;
        self.wf_count += rhs.wf_count;
        self.wee_demotions += rhs.wee_demotions;
        self.bs_lines_sum += rhs.bs_lines_sum;
        self.bs_peak = self.bs_peak.max(rhs.bs_peak);
        self.bs_overflows += rhs.bs_overflows;
        self.writes_bounced += rhs.writes_bounced;
        self.bounce_retries += rhs.bounce_retries;
        self.order_ops += rhs.order_ops;
        self.cond_order_failures += rhs.cond_order_failures;
        self.cond_order_successes += rhs.cond_order_successes;
        self.recoveries += rhs.recoveries;
        self.load_squashes += rhs.load_squashes;
        self.early_retired_loads += rhs.early_retired_loads;
        self.remote_ps_stalls += rhs.remote_ps_stalls;
        self.l1_misses += rhs.l1_misses;
        self.l1_hits += rhs.l1_hits;
    }
}

/// Network traffic counters, split so Table 4's "% traffic increase due to
/// retries" can be computed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficStats {
    /// Bytes moved by first-attempt protocol messages.
    pub base_bytes: u64,
    /// Bytes moved by bounce NACKs and bounced-request retries.
    pub retry_bytes: u64,
    /// Total messages injected.
    pub messages: u64,
}

impl TrafficStats {
    /// Total bytes on the network.
    pub fn total_bytes(&self) -> u64 {
        self.base_bytes + self.retry_bytes
    }

    /// Percentage increase of traffic caused by retries.
    pub fn retry_increase_pct(&self) -> f64 {
        if self.base_bytes == 0 {
            return 0.0;
        }
        100.0 * self.retry_bytes as f64 / self.base_bytes as f64
    }
}

/// Machine-wide statistics, returned by a simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineStats {
    /// Cycle count when the run finished.
    pub cycles: u64,
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Network traffic.
    pub traffic: TrafficStats,
    /// Whether the deadlock watchdog fired (only possible under
    /// `WfOnlyUnsafe` or a mis-grouped WS+ program).
    pub deadlocked: bool,
}

impl MachineStats {
    /// Merges another run's statistics into this one: cycles and traffic
    /// add, per-core counters combine index-wise (extending if `other`
    /// has more cores), and the deadlock flag is sticky.
    ///
    /// `merge` is associative and has [`MachineStats::default`] as its
    /// identity, so per-run statistics collected by independent parallel
    /// jobs can be folded in any grouping with the same result — this is
    /// what lets the run engine aggregate worker output without any
    /// global (shared-mutable) statistics state.
    pub fn merge(&mut self, other: &MachineStats) {
        self.cycles += other.cycles;
        for (i, c) in other.cores.iter().enumerate() {
            if i < self.cores.len() {
                self.cores[i] += c;
            } else {
                self.cores.push(*c);
            }
        }
        self.traffic.base_bytes += other.traffic.base_bytes;
        self.traffic.retry_bytes += other.traffic.retry_bytes;
        self.traffic.messages += other.traffic.messages;
        self.deadlocked |= other.deadlocked;
    }

    /// [`MachineStats::merge`] by value, for fold chains.
    #[must_use]
    pub fn merged(mut self, other: &MachineStats) -> Self {
        self.merge(other);
        self
    }

    /// Sum of all per-core counters.
    pub fn aggregate(&self) -> CoreStats {
        let mut total = CoreStats::default();
        for c in &self.cores {
            total += c;
        }
        total
    }

    /// Fraction of non-idle core cycles spent stalled on fences.
    pub fn fence_stall_fraction(&self) -> f64 {
        let a = self.aggregate();
        let active = a.busy_cycles + a.fence_stall_cycles + a.other_stall_cycles;
        if active == 0 {
            return 0.0;
        }
        a.fence_stall_cycles as f64 / active as f64
    }

    /// Total fence-stall cycles across cores.
    pub fn fence_stall_cycles(&self) -> u64 {
        self.aggregate().fence_stall_cycles
    }

    /// Total retired instructions across cores.
    pub fn instrs_retired(&self) -> u64 {
        self.aggregate().instrs_retired
    }

    /// Derived per-design-feature metrics (see [`DerivedStats`]); the
    /// ratios Table 4 and EXPERIMENTS.md cite, computed in one place.
    pub fn derived(&self) -> DerivedStats {
        let a = self.aggregate();
        let fences = a.sf_count + a.wf_count;
        let active = a.busy_cycles + a.fence_stall_cycles + a.other_stall_cycles;
        let ratio = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        DerivedStats {
            fence_stall_fraction: ratio(a.fence_stall_cycles, active),
            fence_stall_per_fence: ratio(a.fence_stall_cycles, fences),
            fences_per_kilo_instr: a.fences_per_kilo_instr(),
            weak_fence_fraction: ratio(a.wf_count, fences),
            bs_lines_per_wf: a.avg_bs_lines(),
            bounces_per_wf: ratio(a.writes_bounced, a.wf_count),
            retries_per_bounced_write: ratio(a.bounce_retries, a.writes_bounced),
            order_ops_per_wf: ratio(a.order_ops, a.wf_count),
            cond_order_failure_rate: ratio(
                a.cond_order_failures,
                a.cond_order_failures + a.cond_order_successes,
            ),
            recoveries_per_wf: ratio(a.recoveries, a.wf_count),
            demotion_fraction: ratio(a.wee_demotions, fences + a.wee_demotions),
            remote_ps_stalls_per_wf: ratio(a.remote_ps_stalls, a.wf_count),
            early_retired_load_fraction: ratio(a.early_retired_loads, a.loads),
            retry_traffic_pct: self.traffic.retry_increase_pct(),
            bs_overflows_per_wf: ratio(a.bs_overflows, a.wf_count),
            bs_peak_lines: a.bs_peak as f64,
            load_squash_fraction: ratio(a.load_squashes, a.loads),
            l1_miss_rate: ratio(a.l1_misses, a.l1_hits + a.l1_misses),
            bytes_per_message: ratio(self.traffic.total_bytes(), self.traffic.messages),
        }
    }
}

/// Stall-cycle attribution per design feature, derived from a
/// [`MachineStats`] by [`MachineStats::derived`].
///
/// Each field isolates the cost or benefit of one mechanism of the
/// paper's designs, so an experiment writeup can cite "what the weak
/// fence bought" or "what the bounce protocol cost" without re-deriving
/// ratios from raw counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DerivedStats {
    /// Fraction of non-idle core cycles stalled on fences (the paper's
    /// Figures 8/10/11 fence-stall share).
    pub fence_stall_fraction: f64,
    /// Mean fence-stall cycles per executed fence: the per-episode cost
    /// a weak fence must hide.
    pub fence_stall_per_fence: f64,
    /// Fences per 1000 retired instructions (Table 4).
    pub fences_per_kilo_instr: f64,
    /// Fraction of executed fences that stayed weak.
    pub weak_fence_fraction: f64,
    /// Average distinct Bypass-Set lines at wf completion (Table 4).
    pub bs_lines_per_wf: f64,
    /// Writes bounced per weak fence (Table 4).
    pub bounces_per_wf: f64,
    /// Retries per bounced write (Table 4).
    pub retries_per_bounced_write: f64,
    /// WS+/SW+ Order transactions per weak fence (the escape valve rate).
    pub order_ops_per_wf: f64,
    /// Fraction of Conditional-Order attempts that failed on true
    /// sharing (SW+ only).
    pub cond_order_failure_rate: f64,
    /// W+ rollback recoveries per weak fence (Table 4).
    pub recoveries_per_wf: f64,
    /// Fraction of Wee fences demoted to conventional (Table 4's wf→sf
    /// conversions).
    pub demotion_fraction: f64,
    /// Wee RemotePS stall events per weak fence.
    pub remote_ps_stalls_per_wf: f64,
    /// Fraction of loads that retired early past a weak fence — the
    /// reordering the designs exist to allow.
    pub early_retired_load_fraction: f64,
    /// Percentage traffic increase from bounce retries (Table 4).
    pub retry_traffic_pct: f64,
    /// Bypass-Set overflows (wf degraded to sf) per weak fence.
    pub bs_overflows_per_wf: f64,
    /// Peak Bypass-Set occupancy observed on any core (lines).
    pub bs_peak_lines: f64,
    /// Fraction of loads squashed by conflicting invalidations — the
    /// speculation the designs pay for reordering.
    pub load_squash_fraction: f64,
    /// L1 miss rate over all load/store accesses.
    pub l1_miss_rate: f64,
    /// Mean bytes per NoC message (payload efficiency of the protocol).
    pub bytes_per_message: f64,
}

impl DerivedStats {
    /// Every field as a stable `(name, value)` list, in declaration
    /// order. This is the single source of truth the telemetry snapshot
    /// serializer and `perfdiff` iterate, so a field added here is
    /// automatically persisted and regression-gated.
    pub fn fields(&self) -> [(&'static str, f64); 19] {
        [
            ("fence_stall_fraction", self.fence_stall_fraction),
            ("fence_stall_per_fence", self.fence_stall_per_fence),
            ("fences_per_kilo_instr", self.fences_per_kilo_instr),
            ("weak_fence_fraction", self.weak_fence_fraction),
            ("bs_lines_per_wf", self.bs_lines_per_wf),
            ("bounces_per_wf", self.bounces_per_wf),
            ("retries_per_bounced_write", self.retries_per_bounced_write),
            ("order_ops_per_wf", self.order_ops_per_wf),
            ("cond_order_failure_rate", self.cond_order_failure_rate),
            ("recoveries_per_wf", self.recoveries_per_wf),
            ("demotion_fraction", self.demotion_fraction),
            ("remote_ps_stalls_per_wf", self.remote_ps_stalls_per_wf),
            (
                "early_retired_load_fraction",
                self.early_retired_load_fraction,
            ),
            ("retry_traffic_pct", self.retry_traffic_pct),
            ("bs_overflows_per_wf", self.bs_overflows_per_wf),
            ("bs_peak_lines", self.bs_peak_lines),
            ("load_squash_fraction", self.load_squash_fraction),
            ("l1_miss_rate", self.l1_miss_rate),
            ("bytes_per_message", self.bytes_per_message),
        ]
    }

    /// Sets a field by its [`DerivedStats::fields`] name; `false` if the
    /// name is unknown (snapshot schema drift).
    pub fn set_field(&mut self, name: &str, value: f64) -> bool {
        let slot = match name {
            "fence_stall_fraction" => &mut self.fence_stall_fraction,
            "fence_stall_per_fence" => &mut self.fence_stall_per_fence,
            "fences_per_kilo_instr" => &mut self.fences_per_kilo_instr,
            "weak_fence_fraction" => &mut self.weak_fence_fraction,
            "bs_lines_per_wf" => &mut self.bs_lines_per_wf,
            "bounces_per_wf" => &mut self.bounces_per_wf,
            "retries_per_bounced_write" => &mut self.retries_per_bounced_write,
            "order_ops_per_wf" => &mut self.order_ops_per_wf,
            "cond_order_failure_rate" => &mut self.cond_order_failure_rate,
            "recoveries_per_wf" => &mut self.recoveries_per_wf,
            "demotion_fraction" => &mut self.demotion_fraction,
            "remote_ps_stalls_per_wf" => &mut self.remote_ps_stalls_per_wf,
            "early_retired_load_fraction" => &mut self.early_retired_load_fraction,
            "retry_traffic_pct" => &mut self.retry_traffic_pct,
            "bs_overflows_per_wf" => &mut self.bs_overflows_per_wf,
            "bs_peak_lines" => &mut self.bs_peak_lines,
            "load_squash_fraction" => &mut self.load_squash_fraction,
            "l1_miss_rate" => &mut self.l1_miss_rate,
            "bytes_per_message" => &mut self.bytes_per_message,
            _ => return false,
        };
        *slot = value;
        true
    }
}

impl fmt::Display for MachineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.aggregate();
        writeln!(f, "cycles: {}", self.cycles)?;
        writeln!(
            f,
            "busy/fence/other/idle: {}/{}/{}/{}",
            a.busy_cycles, a.fence_stall_cycles, a.other_stall_cycles, a.idle_cycles
        )?;
        writeln!(
            f,
            "instrs: {} (ld {} st {} rmw {} sf {} wf {})",
            a.instrs_retired, a.loads, a.stores, a.rmws, a.sf_count, a.wf_count
        )?;
        writeln!(
            f,
            "bounces: {} writes / {} retries; orders {}; CO ok/fail {}/{}; recoveries {}",
            a.writes_bounced,
            a.bounce_retries,
            a.order_ops,
            a.cond_order_successes,
            a.cond_order_failures,
            a.recoveries
        )?;
        write!(
            f,
            "traffic: {} B (+{:.2}% retries){}",
            self.traffic.total_bytes(),
            self.traffic.retry_increase_pct(),
            if self.deadlocked { "; DEADLOCKED" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_cycle_buckets() {
        let mut s = CoreStats::default();
        s.record_cycle(StallKind::Busy);
        s.record_cycle(StallKind::Fence);
        s.record_cycle(StallKind::Fence);
        s.record_cycle(StallKind::Other);
        s.record_cycle(StallKind::Idle);
        assert_eq!(s.busy_cycles, 1);
        assert_eq!(s.fence_stall_cycles, 2);
        assert_eq!(s.other_stall_cycles, 1);
        assert_eq!(s.idle_cycles, 1);
        assert_eq!(s.total_cycles(), 5);
    }

    #[test]
    fn fences_per_kilo_instr() {
        let s = CoreStats {
            instrs_retired: 2000,
            sf_count: 3,
            wf_count: 1,
            ..Default::default()
        };
        assert!((s.fences_per_kilo_instr() - 2.0).abs() < 1e-12);
        assert_eq!(CoreStats::default().fences_per_kilo_instr(), 0.0);
    }

    #[test]
    fn avg_bs_lines() {
        let s = CoreStats {
            wf_count: 4,
            bs_lines_sum: 14,
            ..Default::default()
        };
        assert!((s.avg_bs_lines() - 3.5).abs() < 1e-12);
        assert_eq!(CoreStats::default().avg_bs_lines(), 0.0);
    }

    #[test]
    fn aggregate_sums_cores() {
        let mut m = MachineStats::default();
        m.cores.push(CoreStats {
            busy_cycles: 10,
            fence_stall_cycles: 5,
            bs_peak: 3,
            ..Default::default()
        });
        m.cores.push(CoreStats {
            busy_cycles: 7,
            fence_stall_cycles: 1,
            bs_peak: 9,
            ..Default::default()
        });
        let a = m.aggregate();
        assert_eq!(a.busy_cycles, 17);
        assert_eq!(a.fence_stall_cycles, 6);
        assert_eq!(a.bs_peak, 9);
        assert!((m.fence_stall_fraction() - 6.0 / 23.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_retry_percentage() {
        let t = TrafficStats {
            base_bytes: 1000,
            retry_bytes: 25,
            messages: 10,
        };
        assert_eq!(t.total_bytes(), 1025);
        assert!((t.retry_increase_pct() - 2.5).abs() < 1e-12);
        assert_eq!(TrafficStats::default().retry_increase_pct(), 0.0);
    }

    fn sample(busy: u64, cores: usize, base: u64) -> MachineStats {
        MachineStats {
            cycles: busy * 10,
            cores: (0..cores)
                .map(|i| CoreStats {
                    busy_cycles: busy + i as u64,
                    fence_stall_cycles: i as u64,
                    bs_peak: busy % 7,
                    ..Default::default()
                })
                .collect(),
            traffic: TrafficStats {
                base_bytes: base,
                retry_bytes: base / 4,
                messages: base / 32,
            },
            deadlocked: false,
        }
    }

    #[test]
    fn merge_identity() {
        let a = sample(100, 3, 4096);
        let mut lhs = a.clone();
        lhs.merge(&MachineStats::default());
        assert_eq!(lhs, a, "default is a right identity");
        let mut rhs = MachineStats::default();
        rhs.merge(&a);
        assert_eq!(rhs, a, "default is a left identity");
    }

    #[test]
    fn merge_associativity() {
        // Deliberately ragged core counts: associativity must hold even
        // when runs come from machines of different sizes.
        let (a, b, c) = (sample(10, 2, 100), sample(20, 4, 200), sample(30, 3, 50));
        let ab_c = a.clone().merged(&b).merged(&c);
        let a_bc = a.clone().merged(&b.clone().merged(&c));
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.cycles, 600);
        assert_eq!(ab_c.cores.len(), 4);
        assert_eq!(ab_c.traffic.base_bytes, 350);
    }

    #[test]
    fn merge_deadlock_is_sticky() {
        let mut a = sample(1, 1, 8);
        let dead = MachineStats {
            deadlocked: true,
            ..Default::default()
        };
        a.merge(&dead);
        assert!(a.deadlocked);
    }

    #[test]
    fn derived_surfaces_every_collected_counter() {
        // The PR-3 counters that used to be collected-but-dropped now
        // land in derived() ratios.
        let mut m = MachineStats::default();
        m.cores.push(CoreStats {
            loads: 100,
            wf_count: 4,
            bs_overflows: 2,
            bs_peak: 7,
            load_squashes: 5,
            l1_misses: 10,
            l1_hits: 30,
            ..Default::default()
        });
        m.traffic = TrafficStats {
            base_bytes: 3000,
            retry_bytes: 200,
            messages: 40,
        };
        let d = m.derived();
        assert!((d.bs_overflows_per_wf - 0.5).abs() < 1e-12);
        assert_eq!(d.bs_peak_lines, 7.0);
        assert!((d.load_squash_fraction - 0.05).abs() < 1e-12);
        assert!((d.l1_miss_rate - 0.25).abs() < 1e-12);
        assert!((d.bytes_per_message - 80.0).abs() < 1e-12);
    }

    #[test]
    fn derived_fields_round_trip_by_name() {
        let mut src = DerivedStats::default();
        // Give every field a distinct value via the name API...
        for (i, (name, _)) in DerivedStats::default().fields().iter().enumerate() {
            assert!(src.set_field(name, i as f64 + 0.5), "unknown field {name}");
        }
        // ...and read them all back through fields().
        for (i, (name, v)) in src.fields().iter().enumerate() {
            assert_eq!(*v, i as f64 + 0.5, "field {name} lost its value");
        }
        assert!(!src.set_field("no_such_field", 1.0));
    }

    #[test]
    fn core_values_round_trip_in_addassign_order() {
        // Give every counter a distinct value so a transposition in
        // either direction would be caught.
        let vals: Vec<u64> = (1..=CoreStats::FIELDS as u64).map(|i| i * 11).collect();
        let core = CoreStats::from_values(&vals).unwrap();
        assert_eq!(core.values().to_vec(), vals);
        // Spot-check that the array order is the declaration order.
        assert_eq!(core.busy_cycles, 11);
        assert_eq!(core.bs_peak, 13 * 11);
        assert_eq!(core.l1_hits, 25 * 11);
        // Wrong lengths are schema drift, not a panic.
        assert!(CoreStats::from_values(&vals[..24]).is_none());
        assert!(CoreStats::from_values(&[]).is_none());
    }

    #[test]
    fn display_mentions_deadlock() {
        let m = MachineStats {
            deadlocked: true,
            cores: vec![CoreStats::default()],
            ..Default::default()
        };
        assert!(format!("{m}").contains("DEADLOCKED"));
    }
}
