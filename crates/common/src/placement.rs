//! Inferred fence placements: *where* fences go, not just how strong.
//!
//! The analyzer (crate `asymfence-analyze`) recovers store→load delay
//! windows from an unannotated program and condenses them into a
//! [`Placement`]: one [`PlacedFence`] per program point that must carry
//! a fence, each owning the set of *trigger* store lines whose delayed
//! write-backs it cuts. The simulator side consumes the compact
//! [`PlacementSpec`] (plain `Copy` data, embeddable in a `RunSpec`),
//! while the synthesis side reads the rich per-site footprints to build
//! conflict groups exactly as it does for hand-annotated sites.
//!
//! Placed sites use *synthetic* ids from [`assign::SYNTHETIC_BASE`]
//! upward so they can never collide with hand-annotated `FenceSite`
//! numbering.
//!
//! [`assign::SYNTHETIC_BASE`]: crate::assign::SYNTHETIC_BASE
//!
//! # Examples
//!
//! ```
//! use asymfence_common::placement::{PlacedFence, Placement};
//! use asymfence_common::assign::synthetic_site;
//!
//! let p = Placement {
//!     fences: vec![PlacedFence {
//!         site: synthetic_site(0),
//!         thread: 0,
//!         label: "t0@0x40".to_string(),
//!         load_line: 1,
//!         triggers: vec![0],
//!         pre_writes: vec![],
//!         post_reads: vec![],
//!     }],
//!     line_bytes: 64,
//! };
//! let spec = p.spec();
//! assert_eq!(spec.len(), 1);
//! assert_eq!(p.site_ids(), vec![synthetic_site(0)]);
//! ```

use crate::ids::Addr;

/// Maximum store→load window patterns a [`PlacementSpec`] can carry.
///
/// Generous relative to the five study kernels (the largest, bakery at
/// three threads, needs well under half); the analyzer asserts against
/// it so an overflowing program fails loudly instead of truncating.
pub const MAX_PLACED: usize = 48;

/// One store→load window pattern a placed fence must cut: thread
/// `thread` stores to `store_line` and later loads from `load_line`
/// with no intervening fence. Lines are raw indexes (`addr /
/// line_bytes`). Plain `Copy` data for embedding in run specs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PlacedWindow {
    /// Synthetic site id of the fence cutting this window.
    pub site: u32,
    /// Thread (program index) both accesses belong to.
    pub thread: u32,
    /// Cache-line index of the delayed store.
    pub store_line: u64,
    /// Cache-line index of the early load; the fence fires immediately
    /// before a load of this line when a trigger store is dirty.
    pub load_line: u64,
}

/// Compact `Copy` encoding of a [`Placement`]: the window patterns,
/// fixed-capacity so a run spec stays plain data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlacementSpec {
    len: u32,
    windows: [PlacedWindow; MAX_PLACED],
}

impl Default for PlacementSpec {
    fn default() -> Self {
        PlacementSpec {
            len: 0,
            windows: [PlacedWindow::default(); MAX_PLACED],
        }
    }
}

impl PlacementSpec {
    /// Builds a spec from window patterns.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_PLACED`] windows are given.
    pub fn from_windows(windows: &[PlacedWindow]) -> Self {
        assert!(
            windows.len() <= MAX_PLACED,
            "placement has {} windows, max {MAX_PLACED}",
            windows.len()
        );
        let mut spec = PlacementSpec {
            len: windows.len() as u32,
            ..Default::default()
        };
        spec.windows[..windows.len()].copy_from_slice(windows);
        spec
    }

    /// The live window patterns.
    pub fn windows(&self) -> &[PlacedWindow] {
        &self.windows[..self.len as usize]
    }

    /// Number of window patterns.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the placement is empty (no fences needed).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Distinct site ids, ascending.
    pub fn site_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.windows().iter().map(|w| w.site).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// One inferred fence point with its full analysis footprint.
///
/// The simulator only needs the window patterns; the synthesis layer
/// reads `pre_writes`/`post_reads` (word addresses the fence orders) to
/// build the cross-thread conflict digraph and its fence groups, the
/// same grouping it applies to hand-annotated `SiteSpec`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacedFence {
    /// Synthetic site id ([`assign::synthetic_site`]).
    ///
    /// [`assign::synthetic_site`]: crate::assign::synthetic_site
    pub site: u32,
    /// Thread (program index) the fence is inserted into.
    pub thread: usize,
    /// Human label, e.g. `t0@0x40` (thread 0, before loads of the line
    /// holding address 0x40).
    pub label: String,
    /// Cache-line index the anchoring load reads.
    pub load_line: u64,
    /// Cache-line indexes of trigger stores (dirty lines that arm the
    /// fence), ascending.
    pub triggers: Vec<u64>,
    /// Word addresses written before the fence point (trigger stores).
    pub pre_writes: Vec<Addr>,
    /// Word addresses read at/after the fence point.
    pub post_reads: Vec<Addr>,
}

/// A whole-program fence placement: the minimal fence points the
/// analyzer found, with enough footprint to drive both simulation and
/// strength synthesis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Placement {
    /// Placed fences, ordered by (thread, load line) — the analyzer's
    /// deterministic numbering order.
    pub fences: Vec<PlacedFence>,
    /// Cache-line size the line indexes were computed with.
    pub line_bytes: u64,
}

impl Placement {
    /// Number of placed fences.
    pub fn len(&self) -> usize {
        self.fences.len()
    }

    /// Whether the program needs no fences.
    pub fn is_empty(&self) -> bool {
        self.fences.is_empty()
    }

    /// Site ids in placement order.
    pub fn site_ids(&self) -> Vec<u32> {
        self.fences.iter().map(|f| f.site).collect()
    }

    /// Flattens to the `Copy` window-pattern encoding the simulator
    /// executes.
    ///
    /// # Panics
    ///
    /// Panics if the placement exceeds [`MAX_PLACED`] window patterns.
    pub fn spec(&self) -> PlacementSpec {
        let mut windows = Vec::new();
        for f in &self.fences {
            for &t in &f.triggers {
                windows.push(PlacedWindow {
                    site: f.site,
                    thread: f.thread as u32,
                    store_line: t,
                    load_line: f.load_line,
                });
            }
        }
        PlacementSpec::from_windows(&windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::synthetic_site;

    fn fence(i: u32, thread: usize, load_line: u64, triggers: &[u64]) -> PlacedFence {
        PlacedFence {
            site: synthetic_site(i),
            thread,
            label: format!("t{thread}@{load_line:#x}"),
            load_line,
            triggers: triggers.to_vec(),
            pre_writes: vec![],
            post_reads: vec![],
        }
    }

    #[test]
    fn spec_flattens_triggers_to_windows() {
        let p = Placement {
            fences: vec![fence(0, 0, 1, &[0, 2]), fence(1, 1, 0, &[1])],
            line_bytes: 64,
        };
        let spec = p.spec();
        assert_eq!(spec.len(), 3);
        assert_eq!(
            spec.site_ids(),
            vec![synthetic_site(0), synthetic_site(1)]
        );
        assert_eq!(spec.windows()[0].store_line, 0);
        assert_eq!(spec.windows()[1].store_line, 2);
        assert_eq!(spec.windows()[2].thread, 1);
    }

    #[test]
    fn empty_placement_is_empty_spec() {
        let p = Placement::default();
        assert!(p.is_empty());
        assert!(p.spec().is_empty());
        assert_eq!(p.spec().site_ids(), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "max")]
    fn spec_overflow_panics() {
        let p = Placement {
            fences: vec![fence(0, 0, 99, &(0..MAX_PLACED as u64 + 1).collect::<Vec<_>>())],
            line_bytes: 64,
        };
        let _ = p.spec();
    }

    #[test]
    fn specs_compare_by_value() {
        let p = Placement {
            fences: vec![fence(0, 0, 1, &[0])],
            line_bytes: 64,
        };
        assert_eq!(p.spec(), p.spec());
        assert_ne!(p.spec(), PlacementSpec::default());
    }
}
