//! Deterministic schedule oracles: the simulator's nondeterminism,
//! surfaced as explicit choice points.
//!
//! The simulator is cycle-accurate and deterministic; every run
//! exercises exactly one interleaving. What *varies* between legal
//! executions of the same program is timing at three injection points —
//! NoC message arbitration, invalidation delivery, and write-buffer
//! drain — and all three funnel through a single [`ScheduleOracle`]
//! asked one question per event: *how many extra cycles does this event
//! wait?*
//!
//! Two oracles implement the trait:
//!
//! * [`SeededJitter`] reproduces the original sampling behaviour
//!   bit-for-bit: every answer is a pure function of
//!   `(seed, stream, event index)` via [`Perturbation::draw`], so a
//!   seed replays a run cycle-for-cycle.
//! * [`ScriptOracle`] drives *bounded-exhaustive* exploration: each
//!   choice point takes one of a small number of quantized delays
//!   (option `k` waits `k × quantum` cycles), selected by a decision
//!   vector indexed in encounter order. Points beyond the end of the
//!   vector take option 0 (no delay), and every point encountered is
//!   recorded, so an explorer can replay a decided prefix and extend
//!   the choice tree from whatever frontier the run exposes.
//!
//! Which oracle a machine builds is configured by the data-only
//! [`SchedulePlan`] in `MachineConfig` — the config stays `Clone +
//! PartialEq` and the boxed oracle is constructed by the memory system.

use crate::config::Perturbation;

/// Kind of nondeterminism point (one per injection site).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChoiceKind {
    /// A NoC message is about to be sent (arbitration jitter).
    NocMessage,
    /// An invalidation is about to be delivered (delivery lag, on top
    /// of the generic message jitter).
    InvalDelivery,
    /// A retired store is entering the write buffer (drain stall).
    WbDrain,
}

/// One nondeterminism point, identified by kind, subject and a
/// per-stream monotone sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChoicePoint {
    /// Injection site.
    pub kind: ChoiceKind,
    /// Core on whose behalf the event happens (message source core or
    /// directory bank node; draining core for [`ChoiceKind::WbDrain`]).
    pub core: usize,
    /// Raw [`LineAddr`](crate::ids::LineAddr) of the subject cache
    /// line, when the event concerns one (GRT traffic does not).
    pub line: Option<u64>,
    /// Monotone event index within the point's stream (the shared
    /// message counter for NoC/inval points, the store serial for
    /// write-buffer points).
    pub seq: u64,
}

/// Answers "how long does this event wait?" for every choice point the
/// simulator encounters, in encounter order.
///
/// Implementations must be pure functions of their own state and the
/// points they are shown: two runs fed identical point sequences must
/// answer identically, which is what makes failing schedules replay.
pub trait ScheduleOracle: std::fmt::Debug + Send {
    /// Extra cycles this event waits before proceeding.
    fn choose(&mut self, point: &ChoicePoint) -> u64;

    /// Hands back the recording of every point encountered (exhaustive
    /// exploration reads this to extend its choice tree). The default
    /// (sampling) oracle records nothing.
    fn take_recording(&mut self) -> Option<ScheduleRecording> {
        None
    }
}

/// The original sampling oracle: seeded, coherence-legal jitter.
///
/// Bit-identical to the pre-trait behaviour — NoC points draw from
/// [`Perturbation::STREAM_NOC`], invalidation points add a
/// [`Perturbation::STREAM_INVAL`] draw on top, and write-buffer points
/// draw from [`Perturbation::STREAM_WB`] salted with the draining core.
#[derive(Clone, Debug)]
pub struct SeededJitter {
    /// The perturbation magnitudes and seed being sampled.
    pub perturb: Perturbation,
}

impl ScheduleOracle for SeededJitter {
    fn choose(&mut self, point: &ChoicePoint) -> u64 {
        let p = &self.perturb;
        match point.kind {
            ChoiceKind::NocMessage => p.draw(Perturbation::STREAM_NOC, point.seq, p.noc_jitter),
            ChoiceKind::InvalDelivery => {
                p.draw(Perturbation::STREAM_NOC, point.seq, p.noc_jitter)
                    + p.draw(Perturbation::STREAM_INVAL, point.seq, p.inval_delay)
            }
            ChoiceKind::WbDrain => p.draw(
                Perturbation::STREAM_WB ^ ((point.core as u64) << 32),
                point.seq,
                p.wb_stall,
            ),
        }
    }
}

/// Per-kind delay quanta for scripted schedules: option `k` at a choice
/// point waits `k × quantum(kind)` cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleQuanta {
    /// Quantum for [`ChoiceKind::NocMessage`] points.
    pub noc: u64,
    /// Quantum for [`ChoiceKind::InvalDelivery`] points.
    pub inval: u64,
    /// Quantum for [`ChoiceKind::WbDrain`] points.
    pub wb: u64,
}

impl ScheduleQuanta {
    /// The quantum for a point kind.
    pub fn quantum(&self, kind: ChoiceKind) -> u64 {
        match kind {
            ChoiceKind::NocMessage => self.noc,
            ChoiceKind::InvalDelivery => self.inval,
            ChoiceKind::WbDrain => self.wb,
        }
    }

    /// The largest delay any single choice can inject under `arity`
    /// options (bounds the watchdog interaction).
    pub fn max_delay(&self, arity: u8) -> u64 {
        self.noc
            .max(self.inval)
            .max(self.wb)
            .saturating_mul(arity.saturating_sub(1) as u64)
    }
}

impl Default for ScheduleQuanta {
    /// Mirrors the sampling defaults (`ExploreConfig`): 48-cycle NoC
    /// jitter and invalidation lag, 96-cycle write-buffer stalls.
    fn default() -> Self {
        ScheduleQuanta {
            noc: 48,
            inval: 48,
            wb: 96,
        }
    }
}

/// A fully decided schedule: a decision vector over quantized delays.
///
/// Decision `i` picks the delay option for the `i`-th choice point the
/// run encounters (in encounter order); points past the end of the
/// vector take option 0. Pure data (`Clone + PartialEq`), so it can
/// ride inside `MachineConfig` and inside counterexamples.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ScheduleScript {
    /// Delay quanta per point kind.
    pub quanta: ScheduleQuanta,
    /// Number of delay options per point (`k` in `0..arity` waits
    /// `k × quantum`); arity 2 means "on time or one quantum late".
    pub arity: u8,
    /// Option index per choice point, in encounter order.
    pub decisions: Vec<u8>,
}

impl ScheduleScript {
    /// An all-natural schedule (every decision 0) with the given shape.
    pub fn natural(quanta: ScheduleQuanta, arity: u8) -> Self {
        ScheduleScript {
            quanta,
            arity,
            decisions: Vec::new(),
        }
    }

    /// This script with one decision replaced/extended (zero-padding
    /// any gap); used by the explorer to branch at a frontier node.
    pub fn with_decision(&self, index: usize, option: u8) -> Self {
        let mut s = self.clone();
        if s.decisions.len() <= index {
            s.decisions.resize(index + 1, 0);
        }
        s.decisions[index] = option;
        s
    }

    /// Number of nonzero decisions (the schedule's "reorder cost",
    /// compared against the exploration bound).
    pub fn cost(&self) -> usize {
        self.decisions.iter().filter(|&&d| d != 0).count()
    }
}

/// One recorded choice: the point and the option it took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChoiceRecord {
    /// The point encountered.
    pub point: ChoicePoint,
    /// The option index the script chose (0 = no delay).
    pub option: u8,
}

/// Every choice point one run encountered, in encounter order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleRecording {
    /// The per-point records.
    pub records: Vec<ChoiceRecord>,
}

/// The scripted oracle: replays a [`ScheduleScript`] and records every
/// point it is shown.
#[derive(Clone, Debug)]
pub struct ScriptOracle {
    script: ScheduleScript,
    cursor: usize,
    recording: ScheduleRecording,
}

impl ScriptOracle {
    /// Builds the oracle for one run of `script`.
    pub fn new(script: ScheduleScript) -> Self {
        ScriptOracle {
            script,
            cursor: 0,
            recording: ScheduleRecording::default(),
        }
    }
}

impl ScheduleOracle for ScriptOracle {
    fn choose(&mut self, point: &ChoicePoint) -> u64 {
        let option = self
            .script
            .decisions
            .get(self.cursor)
            .copied()
            .unwrap_or(0)
            .min(self.script.arity.saturating_sub(1));
        self.cursor += 1;
        self.recording.records.push(ChoiceRecord {
            point: *point,
            option,
        });
        u64::from(option) * self.script.quanta.quantum(point.kind)
    }

    fn take_recording(&mut self) -> Option<ScheduleRecording> {
        Some(std::mem::take(&mut self.recording))
    }
}

/// How a machine sources its schedule nondeterminism (data-only; the
/// memory system constructs the boxed oracle from this).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum SchedulePlan {
    /// Sample seeded jitter per `MachineConfig::perturb` (natural
    /// schedule when the perturbation is inactive). The default.
    #[default]
    Seeded,
    /// Replay a decided schedule and record the choice points
    /// encountered (bounded-exhaustive exploration).
    Scripted(ScheduleScript),
}

impl SchedulePlan {
    /// Builds the oracle this plan describes; `None` means "no
    /// nondeterminism" (every event on natural time, zero overhead).
    pub fn build_oracle(&self, perturb: Perturbation) -> Option<Box<dyn ScheduleOracle>> {
        match self {
            SchedulePlan::Seeded => perturb
                .is_active()
                .then(|| Box::new(SeededJitter { perturb }) as Box<dyn ScheduleOracle>),
            SchedulePlan::Scripted(script) => {
                Some(Box::new(ScriptOracle::new(script.clone())) as Box<dyn ScheduleOracle>)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(kind: ChoiceKind, core: usize, seq: u64) -> ChoicePoint {
        ChoicePoint {
            kind,
            core,
            line: Some(0x40),
            seq,
        }
    }

    #[test]
    fn seeded_jitter_matches_raw_perturbation_draws() {
        let p = Perturbation {
            seed: 9,
            noc_jitter: 48,
            wb_stall: 96,
            inval_delay: 48,
        };
        let mut orc = SeededJitter { perturb: p };
        assert_eq!(
            orc.choose(&point(ChoiceKind::NocMessage, 2, 7)),
            p.draw(Perturbation::STREAM_NOC, 7, 48)
        );
        assert_eq!(
            orc.choose(&point(ChoiceKind::InvalDelivery, 2, 8)),
            p.draw(Perturbation::STREAM_NOC, 8, 48) + p.draw(Perturbation::STREAM_INVAL, 8, 48)
        );
        assert_eq!(
            orc.choose(&point(ChoiceKind::WbDrain, 3, 2)),
            p.draw(Perturbation::STREAM_WB ^ (3 << 32), 2, 96)
        );
        assert!(orc.take_recording().is_none());
    }

    #[test]
    fn script_oracle_replays_and_records() {
        let script = ScheduleScript {
            quanta: ScheduleQuanta {
                noc: 10,
                inval: 20,
                wb: 30,
            },
            arity: 3,
            decisions: vec![0, 2, 1],
        };
        let mut orc = ScriptOracle::new(script);
        assert_eq!(orc.choose(&point(ChoiceKind::NocMessage, 0, 1)), 0);
        assert_eq!(orc.choose(&point(ChoiceKind::WbDrain, 1, 1)), 60);
        assert_eq!(orc.choose(&point(ChoiceKind::InvalDelivery, 0, 2)), 20);
        // Beyond the vector: option 0.
        assert_eq!(orc.choose(&point(ChoiceKind::NocMessage, 0, 3)), 0);
        let rec = orc.take_recording().unwrap();
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.records[1].option, 2);
        assert_eq!(rec.records[3].option, 0);
        // Recording is handed over exactly once per take.
        assert_eq!(orc.take_recording().unwrap().records.len(), 0);
    }

    #[test]
    fn script_clamps_out_of_range_options() {
        let script = ScheduleScript {
            quanta: ScheduleQuanta::default(),
            arity: 2,
            decisions: vec![9],
        };
        let mut orc = ScriptOracle::new(script);
        // Option 9 clamps to arity-1 = 1 → one noc quantum.
        assert_eq!(orc.choose(&point(ChoiceKind::NocMessage, 0, 1)), 48);
    }

    #[test]
    fn plan_builds_the_right_oracle() {
        assert!(SchedulePlan::Seeded
            .build_oracle(Perturbation::default())
            .is_none());
        let p = Perturbation {
            seed: 1,
            noc_jitter: 4,
            wb_stall: 0,
            inval_delay: 0,
        };
        assert!(SchedulePlan::Seeded.build_oracle(p).is_some());
        let scripted = SchedulePlan::Scripted(ScheduleScript::natural(ScheduleQuanta::default(), 2));
        assert!(scripted.build_oracle(Perturbation::default()).is_some());
    }

    #[test]
    fn with_decision_extends_and_costs() {
        let s = ScheduleScript::natural(ScheduleQuanta::default(), 2);
        let s = s.with_decision(3, 1);
        assert_eq!(s.decisions, vec![0, 0, 0, 1]);
        assert_eq!(s.cost(), 1);
        assert_eq!(s.with_decision(0, 1).cost(), 2);
    }
}
