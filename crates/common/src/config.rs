//! Machine configuration: the paper's Table 2 parameters plus the knobs of
//! the fence designs.
//!
//! Defaults reproduce the evaluated machine: 8 out-of-order 4-issue cores,
//! 140-entry ROB, 64-entry write buffer, private 32 KB 4-way L1 with 32 B
//! lines (2-cycle round trip), shared per-core 128 KB 8-way L2 banks
//! (11-cycle local round trip), a 32-entry Bypass Set per core, a full-map
//! MESI directory under TSO, a 2D mesh with 5 cycles/hop, and a 200-cycle
//! memory round trip.

use std::fmt;

/// Which fence microarchitecture the machine implements.
///
/// This is the paper's Table 1 taxonomy. Workloads tag each fence with a
/// *role* (performance-critical or not); the design decides what hardware
/// fence each role maps to:
///
/// * [`SPlus`](FenceDesign::SPlus) — every fence is a conventional strong
///   fence (`sf`). Baseline.
/// * [`WsPlus`](FenceDesign::WsPlus) — critical fences are weak (`wf`) with
///   the **Order** operation; at most one wf per fence group is assumed.
/// * [`SwPlus`](FenceDesign::SwPlus) — critical fences are weak with
///   word-granularity Bypass Sets and the **Conditional Order** operation;
///   any asymmetric group is safe.
/// * [`WPlus`](FenceDesign::WPlus) — every fence is weak; deadlock is
///   allowed, detected by timeout, and rolled back from a checkpoint.
/// * [`Wee`](FenceDesign::Wee) — the WeeFence comparison point: weak fences
///   with global state (Pending Sets in a directory-resident GRT); a fence
///   whose state would span multiple directory banks degrades to `sf`.
/// * [`WfOnlyUnsafe`](FenceDesign::WfOnlyUnsafe) — a *deliberately broken*
///   design (WeeFence with no GRT and no W+ recovery) used by tests and the
///   litmus example to demonstrate the deadlock of Figure 3a. Not part of
///   the paper's taxonomy; never use it for real workloads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FenceDesign {
    /// Conventional fences only (baseline `S+`).
    SPlus,
    /// Asymmetric groups with at most one weak fence (`WS+`).
    WsPlus,
    /// Any asymmetric group (`SW+`).
    SwPlus,
    /// All fences weak, timeout + rollback recovery (`W+`).
    WPlus,
    /// WeeFence with its global GRT (comparison design).
    Wee,
    /// Weak fences with no protection at all — deadlocks on a fence group.
    WfOnlyUnsafe,
}

impl FenceDesign {
    /// All designs evaluated in the paper, in presentation order.
    pub const EVALUATED: [FenceDesign; 4] = [
        FenceDesign::SPlus,
        FenceDesign::WsPlus,
        FenceDesign::WPlus,
        FenceDesign::Wee,
    ];

    /// Whether fences tagged *critical* become weak fences under this design.
    pub fn critical_is_weak(self) -> bool {
        !matches!(self, FenceDesign::SPlus)
    }

    /// Whether fences tagged *non-critical* become weak fences too.
    pub fn noncritical_is_weak(self) -> bool {
        matches!(
            self,
            FenceDesign::WPlus | FenceDesign::Wee | FenceDesign::WfOnlyUnsafe
        )
    }

    /// Whether the Bypass Set records word-granularity addresses.
    pub fn fine_grain_bs(self) -> bool {
        matches!(self, FenceDesign::SwPlus)
    }

    /// Short label used in reports ("S+", "WS+", …).
    pub fn label(self) -> &'static str {
        match self {
            FenceDesign::SPlus => "S+",
            FenceDesign::WsPlus => "WS+",
            FenceDesign::SwPlus => "SW+",
            FenceDesign::WPlus => "W+",
            FenceDesign::Wee => "Wee",
            FenceDesign::WfOnlyUnsafe => "wf-only(unsafe)",
        }
    }
}

impl fmt::Display for FenceDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic timing perturbations for schedule exploration.
///
/// The simulator is cycle-accurate and deterministic, so a single run
/// exercises exactly one interleaving. The exploration engine
/// (`asymfence-explore`) sweeps seeds; each seed stretches latencies at
/// three independent injection points, within bounds the coherence
/// protocol tolerates by construction:
///
/// * **NoC delay jitter** — every network message may arrive up to
///   `noc_jitter` cycles late. Point-to-point FIFO order (which the
///   protocol relies on) is preserved by the network layer.
/// * **Write-buffer drain stalls** — each store may wait up to
///   `wb_stall` extra cycles in the write buffer before issuing,
///   widening the window in which post-fence loads run ahead.
/// * **Invalidation reordering** — invalidation (`Inv`) deliveries may
///   lag an additional `inval_delay` cycles, reordering invalidations
///   against data replies and against other sharers' invalidations.
///
/// All perturbations are pure functions of `(seed, injection point,
/// event index)`, so a seed reproduces a run cycle-for-cycle. The
/// default (`all zero`) disables perturbation entirely and leaves the
/// baseline timing untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Perturbation {
    /// Seed for all perturbation draws.
    pub seed: u64,
    /// Max extra cycles added to any network message's delivery.
    pub noc_jitter: u64,
    /// Max extra cycles a store waits in the write buffer before issuing.
    pub wb_stall: u64,
    /// Max *additional* extra cycles on invalidation deliveries.
    pub inval_delay: u64,
}

impl Perturbation {
    /// Perturbation streams (namespaces for [`Perturbation::draw`]).
    pub const STREAM_NOC: u64 = 0x006E_6F63;
    /// Write-buffer stall stream.
    pub const STREAM_WB: u64 = 0x7762;
    /// Invalidation delay stream.
    pub const STREAM_INVAL: u64 = 0x0069_6E76;

    /// Whether any perturbation is enabled.
    pub fn is_active(&self) -> bool {
        self.noc_jitter != 0 || self.wb_stall != 0 || self.inval_delay != 0
    }

    /// Deterministic draw in `[0, max]` for event `event` of `stream`.
    pub fn draw(&self, stream: u64, event: u64, max: u64) -> u64 {
        if max == 0 {
            return 0;
        }
        crate::rng::mix64(&[self.seed, stream, event]) % (max + 1)
    }
}

/// Full configuration of a simulated machine.
///
/// Construct with [`MachineConfig::default`] (the paper's machine) or
/// [`MachineConfig::builder`].
///
/// # Examples
///
/// ```
/// use asymfence_common::config::{FenceDesign, MachineConfig};
///
/// let cfg = MachineConfig::builder()
///     .cores(16)
///     .fence_design(FenceDesign::WPlus)
///     .build();
/// assert_eq!(cfg.num_cores, 16);
/// assert_eq!(cfg.mesh_dims(), (4, 4));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (paper: 4–32, default 8).
    pub num_cores: usize,
    /// Fence microarchitecture.
    pub fence_design: FenceDesign,
    /// Issue/retire width of each core (instructions per cycle).
    pub issue_width: usize,
    /// Reorder-buffer capacity.
    pub rob_entries: usize,
    /// Write-buffer capacity.
    pub wb_entries: usize,
    /// Stores the write buffer may merge with memory concurrently. TSO
    /// (the paper's model) merges **one at a time**; larger values model
    /// an RC-flavoured drain (paper §2.1) for the ablation studies. Full
    /// RC load/store reordering is out of scope, as in the paper's §5.2.
    pub wb_merge_width: usize,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Word size in bytes (granularity of SW+ Bypass-Set matching).
    pub word_bytes: u64,
    /// Private L1 size in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 round-trip latency in cycles (hit).
    pub l1_hit_cycles: u64,
    /// Per-core shared L2 bank size in bytes.
    pub l2_bank_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 bank access latency in cycles (excluding network).
    pub l2_hit_cycles: u64,
    /// Off-chip memory round trip in cycles.
    pub mem_cycles: u64,
    /// Mesh link traversal latency per hop, in cycles.
    pub hop_cycles: u64,
    /// Link width in bytes per cycle (256-bit links).
    pub link_bytes_per_cycle: u64,
    /// Directory/L2 interleaving granularity in lines (consecutive
    /// `dir_interleave_lines`-line chunks share a home bank; default
    /// 4096 lines = 128 KB chunks).
    pub dir_interleave_lines: u64,
    /// Bypass Set capacity (entries per core).
    pub bs_entries: usize,
    /// Cycles a bounced (NACKed) write waits before retrying.
    pub bounce_retry_cycles: u64,
    /// W+ deadlock-suspicion timeout, in cycles.
    pub w_timeout_cycles: u64,
    /// Cycles the machine may make no global progress before the watchdog
    /// declares deadlock (used to demonstrate `WfOnlyUnsafe`).
    pub watchdog_cycles: u64,
    /// Whether to keep the perform-order log needed by the SCV checker.
    pub record_scv_log: bool,
    /// Whether to attach a fence-lifecycle trace sink
    /// ([`crate::trace::TraceSink`]). Pure observation: enabling it
    /// never changes simulation results.
    pub record_trace: bool,
    /// RNG seed threaded to workloads for deterministic runs.
    pub seed: u64,
    /// Deterministic timing perturbations (off by default).
    pub perturb: Perturbation,
    /// How the machine sources schedule nondeterminism: sample seeded
    /// jitter from `perturb` (the default) or replay a scripted
    /// decision vector for bounded-exhaustive exploration.
    pub schedule: crate::schedule::SchedulePlan,
    /// Explicit per-site fence-strength overrides
    /// ([`crate::assign::FenceAssignment`]). `None` (the default) and an
    /// empty assignment both leave every fence on the design's role
    /// mapping, bit-for-bit.
    pub fence_assignment: Option<crate::assign::FenceAssignment>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_cores: 8,
            fence_design: FenceDesign::SPlus,
            issue_width: 4,
            rob_entries: 140,
            wb_entries: 64,
            wb_merge_width: 1,
            line_bytes: 32,
            word_bytes: 8,
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l1_hit_cycles: 2,
            l2_bank_bytes: 128 * 1024,
            l2_ways: 8,
            l2_hit_cycles: 11,
            mem_cycles: 200,
            hop_cycles: 5,
            link_bytes_per_cycle: 32,
            dir_interleave_lines: 4096,
            bs_entries: 32,
            bounce_retry_cycles: 16,
            w_timeout_cycles: 200,
            watchdog_cycles: 200_000,
            record_scv_log: false,
            record_trace: false,
            seed: 0xA5F0_2015,
            perturb: Perturbation::default(),
            schedule: crate::schedule::SchedulePlan::Seeded,
            fence_assignment: None,
        }
    }
}

impl MachineConfig {
    /// Starts a builder pre-loaded with the defaults.
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder {
            cfg: MachineConfig::default(),
        }
    }

    /// Words per cache line.
    pub fn words_per_line(&self) -> usize {
        (self.line_bytes / self.word_bytes) as usize
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> usize {
        (self.l1_bytes / self.line_bytes) as usize / self.l1_ways
    }

    /// Number of sets in one L2 bank.
    pub fn l2_sets(&self) -> usize {
        (self.l2_bank_bytes / self.line_bytes) as usize / self.l2_ways
    }

    /// Bytes covered by one directory-interleave chunk.
    pub fn interleave_bytes(&self) -> u64 {
        self.dir_interleave_lines * self.line_bytes
    }

    /// Mesh dimensions `(cols, rows)`: the squarest grid that fits
    /// `num_cores` nodes.
    pub fn mesh_dims(&self) -> (usize, usize) {
        let n = self.num_cores.max(1);
        let mut cols = (n as f64).sqrt().ceil() as usize;
        if cols == 0 {
            cols = 1;
        }
        let rows = n.div_ceil(cols);
        (cols, rows)
    }

    /// Whether `other` describes the same hardware *shape*: every
    /// parameter that is baked into constructed machine structures
    /// (cache geometry, mesh, directory banks, Bypass-Set capacity,
    /// link timing). Two shape-equal configs may still differ in purely
    /// dynamic knobs — fence design, seeds, perturbation, schedule plan,
    /// fence assignment, timeouts, trace/log switches — which a pooled
    /// machine picks up on reset without rebuilding.
    pub fn same_machine_shape(&self, other: &MachineConfig) -> bool {
        self.num_cores == other.num_cores
            && self.line_bytes == other.line_bytes
            && self.word_bytes == other.word_bytes
            && self.l1_bytes == other.l1_bytes
            && self.l1_ways == other.l1_ways
            && self.l2_bank_bytes == other.l2_bank_bytes
            && self.l2_ways == other.l2_ways
            && self.l2_hit_cycles == other.l2_hit_cycles
            && self.mem_cycles == other.mem_cycles
            && self.hop_cycles == other.hop_cycles
            && self.link_bytes_per_cycle == other.link_bytes_per_cycle
            && self.dir_interleave_lines == other.dir_interleave_lines
            && self.bs_entries == other.bs_entries
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint
    /// (non-power-of-two line size, zero cores, word larger than line, …).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be at least 1".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line_bytes must be a power of two".into());
        }
        if !self.word_bytes.is_power_of_two() || self.word_bytes > self.line_bytes {
            return Err("word_bytes must be a power of two no larger than line_bytes".into());
        }
        // Mirrors the coherence crate's `MAX_LINE_WORDS`: line payloads
        // are stored inline in `Copy` protocol messages, so the bound is
        // deliberately tight to keep per-message copies cheap.
        if self.words_per_line() > 8 {
            return Err("at most 8 words per line (inline line-data width)".into());
        }
        if self.issue_width == 0 || self.rob_entries == 0 || self.wb_entries == 0 {
            return Err("issue_width, rob_entries and wb_entries must be nonzero".into());
        }
        if self.wb_merge_width == 0 {
            return Err("wb_merge_width must be nonzero".into());
        }
        if self.l1_sets() == 0 || self.l2_sets() == 0 {
            return Err("cache geometry yields zero sets".into());
        }
        if self.bs_entries == 0 {
            return Err("bs_entries must be nonzero".into());
        }
        if self.dir_interleave_lines == 0 {
            return Err("dir_interleave_lines must be nonzero".into());
        }
        let p = &self.perturb;
        if p.noc_jitter.max(p.wb_stall).max(p.inval_delay) >= self.watchdog_cycles {
            return Err("perturbation delays must stay below watchdog_cycles".into());
        }
        if let crate::schedule::SchedulePlan::Scripted(s) = &self.schedule {
            if s.arity < 2 {
                return Err("scripted schedules need at least two options per point".into());
            }
            if s.quanta.max_delay(s.arity) >= self.watchdog_cycles {
                return Err("scripted schedule delays must stay below watchdog_cycles".into());
            }
        }
        Ok(())
    }
}

/// Builder for [`MachineConfig`].
///
/// # Examples
///
/// ```
/// use asymfence_common::config::{FenceDesign, MachineConfig};
/// let cfg = MachineConfig::builder()
///     .cores(4)
///     .fence_design(FenceDesign::WsPlus)
///     .seed(7)
///     .build();
/// assert_eq!(cfg.fence_design, FenceDesign::WsPlus);
/// ```
#[derive(Clone, Debug)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Sets the core count.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.num_cores = n;
        self
    }

    /// Sets the fence design.
    pub fn fence_design(mut self, d: FenceDesign) -> Self {
        self.cfg.fence_design = d;
        self
    }

    /// Sets the RNG seed handed to workloads.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the write-buffer capacity.
    pub fn wb_entries(mut self, n: usize) -> Self {
        self.cfg.wb_entries = n;
        self
    }

    /// Sets how many stores may merge with memory concurrently (1 = TSO).
    pub fn wb_merge_width(mut self, n: usize) -> Self {
        self.cfg.wb_merge_width = n;
        self
    }

    /// Sets the reorder-buffer capacity.
    pub fn rob_entries(mut self, n: usize) -> Self {
        self.cfg.rob_entries = n;
        self
    }

    /// Sets the Bypass-Set capacity.
    pub fn bs_entries(mut self, n: usize) -> Self {
        self.cfg.bs_entries = n;
        self
    }

    /// Sets the directory interleaving granularity (in lines).
    pub fn dir_interleave_lines(mut self, n: u64) -> Self {
        self.cfg.dir_interleave_lines = n;
        self
    }

    /// Bytes covered by one directory-interleave chunk.
    pub fn interleave_bytes(&self) -> u64 {
        self.cfg.dir_interleave_lines * self.cfg.line_bytes
    }

    /// Sets the W+ deadlock-suspicion timeout.
    pub fn w_timeout_cycles(mut self, n: u64) -> Self {
        self.cfg.w_timeout_cycles = n;
        self
    }

    /// Sets the bounced-write retry backoff.
    pub fn bounce_retry_cycles(mut self, n: u64) -> Self {
        self.cfg.bounce_retry_cycles = n;
        self
    }

    /// Sets the global-progress watchdog horizon.
    pub fn watchdog_cycles(mut self, n: u64) -> Self {
        self.cfg.watchdog_cycles = n;
        self
    }

    /// Sets the mesh per-hop latency.
    pub fn hop_cycles(mut self, n: u64) -> Self {
        self.cfg.hop_cycles = n;
        self
    }

    /// Sets the off-chip memory round trip.
    pub fn mem_cycles(mut self, n: u64) -> Self {
        self.cfg.mem_cycles = n;
        self
    }

    /// Enables or disables the SCV perform-order log.
    pub fn record_scv_log(mut self, on: bool) -> Self {
        self.cfg.record_scv_log = on;
        self
    }

    /// Enables or disables the fence-lifecycle trace sink.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.cfg.record_trace = on;
        self
    }

    /// Sets the deterministic timing perturbations.
    pub fn perturb(mut self, p: Perturbation) -> Self {
        self.cfg.perturb = p;
        self
    }

    /// Sets the schedule plan (seeded sampling vs scripted replay).
    pub fn schedule(mut self, plan: crate::schedule::SchedulePlan) -> Self {
        self.cfg.schedule = plan;
        self
    }

    /// Installs explicit per-site fence-strength overrides.
    pub fn fence_assignment(mut self, a: crate::assign::FenceAssignment) -> Self {
        self.cfg.fence_assignment = Some(a);
        self
    }

    /// Applies an arbitrary mutation, for knobs without a dedicated setter.
    pub fn tweak(mut self, f: impl FnOnce(&mut MachineConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`].
    pub fn build(self) -> MachineConfig {
        if let Err(e) = self.cfg.validate() {
            panic!("invalid MachineConfig: {e}");
        }
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table2() {
        let c = MachineConfig::default();
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.rob_entries, 140);
        assert_eq!(c.wb_entries, 64);
        assert_eq!(c.line_bytes, 32);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l1_ways, 4);
        assert_eq!(c.l1_hit_cycles, 2);
        assert_eq!(c.l2_bank_bytes, 128 * 1024);
        assert_eq!(c.l2_ways, 8);
        assert_eq!(c.l2_hit_cycles, 11);
        assert_eq!(c.mem_cycles, 200);
        assert_eq!(c.hop_cycles, 5);
        assert_eq!(c.link_bytes_per_cycle, 32);
        assert_eq!(c.bs_entries, 32);
        c.validate().expect("default config must validate");
    }

    #[test]
    fn geometry_derived_quantities() {
        let c = MachineConfig::default();
        assert_eq!(c.words_per_line(), 4);
        assert_eq!(c.l1_sets(), 256);
        assert_eq!(c.l2_sets(), 512);
    }

    #[test]
    fn mesh_dims_cover_core_counts() {
        for (n, dims) in [(1, (1, 1)), (4, (2, 2)), (8, (3, 3)), (16, (4, 4)), (32, (6, 6))] {
            let c = MachineConfig::builder().cores(n).build();
            assert_eq!(c.mesh_dims(), dims, "cores={n}");
            let (cols, rows) = c.mesh_dims();
            assert!(cols * rows >= n);
        }
    }

    #[test]
    fn design_role_mapping() {
        use FenceDesign::*;
        assert!(!SPlus.critical_is_weak());
        assert!(WsPlus.critical_is_weak() && !WsPlus.noncritical_is_weak());
        assert!(SwPlus.critical_is_weak() && !SwPlus.noncritical_is_weak());
        assert!(WPlus.critical_is_weak() && WPlus.noncritical_is_weak());
        assert!(Wee.noncritical_is_weak());
        assert!(SwPlus.fine_grain_bs());
        assert!(!WsPlus.fine_grain_bs());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let c = MachineConfig {
            num_cores: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = MachineConfig {
            line_bytes: 48,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = MachineConfig {
            word_bytes: 64,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let c = MachineConfig {
            bs_entries: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid MachineConfig")]
    fn builder_panics_on_invalid() {
        let _ = MachineConfig::builder().cores(0).build();
    }

    #[test]
    fn perturbation_defaults_off_and_draws_deterministically() {
        let p = Perturbation::default();
        assert!(!p.is_active());
        assert_eq!(p.draw(Perturbation::STREAM_NOC, 7, 0), 0);

        let p = Perturbation {
            seed: 11,
            noc_jitter: 8,
            wb_stall: 0,
            inval_delay: 0,
        };
        assert!(p.is_active());
        let a = p.draw(Perturbation::STREAM_NOC, 3, 8);
        let b = p.draw(Perturbation::STREAM_NOC, 3, 8);
        assert_eq!(a, b);
        assert!(a <= 8);
        // Different events and streams draw independently.
        let evs: std::collections::HashSet<u64> =
            (0..64).map(|e| p.draw(Perturbation::STREAM_NOC, e, 8)).collect();
        assert!(evs.len() > 1, "draws must vary by event");
    }

    #[test]
    fn perturbation_bounded_by_watchdog() {
        let mut c = MachineConfig::default();
        c.perturb = Perturbation {
            seed: 1,
            noc_jitter: c.watchdog_cycles,
            wb_stall: 0,
            inval_delay: 0,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn labels_are_papers_names() {
        let labels: Vec<&str> = FenceDesign::EVALUATED.iter().map(|d| d.label()).collect();
        assert_eq!(labels, ["S+", "WS+", "W+", "Wee"]);
    }
}
