//! Deterministic fence-lifecycle tracing.
//!
//! A [`TraceSink`] is a ring-buffered recorder of structured
//! [`TraceEvent`]s: fence issue/complete/demote, Order completions,
//! store bounces, Bypass-Set insert/hit/evict, W+ checkpoint/rollback,
//! NoC hops and directory busy-NACKs — each stamped with the cycle and
//! core it happened on. The machine design is stamped once, on the sink.
//!
//! The sink is **pure observation**: recording never feeds back into the
//! simulation, so a traced run and an untraced run of the same
//! configuration produce bit-identical results (pinned by
//! `crates/bench/tests/runner_determinism.rs`). Tracing is off by
//! default; `MachineConfig::record_trace` turns it on, mirroring
//! `record_scv_log`.
//!
//! Besides the raw ring, the sink maintains *exact* aggregates that
//! survive ring wrap-around: per-class [`FenceTally`] histograms
//! (latency in log2 buckets, bounces per fence) and paired
//! issue→complete [`FenceSpan`]s keyed by the stable fence id
//! `(core, fence serial)`. [`TraceSink::chrome_json`] renders the whole
//! thing as Chrome-trace/Perfetto JSON (load it at <https://ui.perfetto.dev>).
//!
//! Producers use the [`trace_event!`](crate::trace_event) macro, which
//! evaluates its event expression only when a sink is attached.
//!
//! # Examples
//!
//! ```
//! use asymfence_common::config::FenceDesign;
//! use asymfence_common::ids::CoreId;
//! use asymfence_common::trace::{FenceClass, TraceEvent, TraceKind, TraceSink};
//!
//! let mut sink = TraceSink::new(FenceDesign::WsPlus);
//! sink.record(TraceEvent {
//!     cycle: 100,
//!     core: CoreId(1),
//!     kind: TraceKind::FenceIssue { serial: 1, class: FenceClass::Weak },
//! });
//! sink.record(TraceEvent {
//!     cycle: 160,
//!     core: CoreId(1),
//!     kind: TraceKind::FenceComplete { serial: 1 },
//! });
//! let span = &sink.spans()[0];
//! assert_eq!((span.issue, span.complete), (100, 160));
//! assert_eq!(sink.tally(FenceClass::Weak).completed, 1);
//! assert!(sink.chrome_json().contains("\"ph\":\"X\""));
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::config::FenceDesign;
use crate::ids::{CoreId, Cycle, LineAddr};

/// Default event-ring capacity (events beyond it evict the oldest).
pub const DEFAULT_CAPACITY: usize = 1 << 18;

/// Number of log2 latency buckets in a [`FenceTally`].
pub const LATENCY_BUCKETS: usize = 32;

/// Number of bounce-count buckets in a [`FenceTally`] (bucket `i` counts
/// fences with `i` bounces; the last bucket is `>= BOUNCE_BUCKETS - 1`).
pub const BOUNCE_BUCKETS: usize = 8;

/// The hardware flavour of a fence episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FenceClass {
    /// Conventional strong fence (`sf`): stalls until the WB drains.
    Strong,
    /// Weak fence (`wf`): post-fence accesses may complete early.
    Weak,
    /// WeeFence weak fence: like `wf` plus the GRT deposit round trip.
    WeeWeak,
}

impl FenceClass {
    /// All classes, in tally order.
    pub const ALL: [FenceClass; 3] = [FenceClass::Strong, FenceClass::Weak, FenceClass::WeeWeak];

    /// Short label used in reports and the Perfetto export.
    pub fn label(self) -> &'static str {
        match self {
            FenceClass::Strong => "sf",
            FenceClass::Weak => "wf",
            FenceClass::WeeWeak => "wee-wf",
        }
    }

    fn idx(self) -> usize {
        match self {
            FenceClass::Strong => 0,
            FenceClass::Weak => 1,
            FenceClass::WeeWeak => 2,
        }
    }
}

/// What a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A fence instruction dispatched into the ROB. `(core, serial)` is
    /// the stable fence id every later lifecycle event refers to.
    FenceIssue {
        /// Per-core fence serial.
        serial: u64,
        /// Resolved hardware flavour at dispatch.
        class: FenceClass,
    },
    /// The fence completed: pre-fence stores drained (weak) or the WB
    /// emptied and it retired (strong).
    FenceComplete {
        /// Per-core fence serial.
        serial: u64,
    },
    /// A Wee fence whose Pending Set spanned several directory banks
    /// demoted to a conventional fence (paper §2.3).
    FenceDemote {
        /// Per-core fence serial.
        serial: u64,
    },
    /// An Order / Conditional-Order write transaction completed at this
    /// core (the line returned Shared with the update merged in memory).
    OrderComplete {
        /// The written line.
        line: LineAddr,
        /// `true` for SW+ Conditional Order, `false` for WS+ Order.
        conditional: bool,
    },
    /// A pre-fence write bounced off a remote Bypass Set and will retry.
    StoreBounce {
        /// The written line.
        line: LineAddr,
        /// Retry attempt count so far (1 = first bounce).
        attempt: u32,
    },
    /// An early-retired post-fence load entered the Bypass Set.
    BsInsert {
        /// The load's line.
        line: LineAddr,
    },
    /// The Bypass Set bounced an incoming invalidation (the core shown
    /// is the *bouncing* sharer, not the writer).
    BsHit {
        /// The contested line.
        line: LineAddr,
    },
    /// Bypass-Set entries were cleared (fence completion or rollback).
    BsEvict {
        /// How many entries left the set.
        entries: u32,
    },
    /// W+ took a checkpoint at weak-fence dispatch.
    Checkpoint {
        /// Serial of the checkpointed fence.
        serial: u64,
    },
    /// W+ deadlock-suspicion timeout expired: roll back to the
    /// checkpoint; every open fence on this core is squashed.
    Rollback {
        /// Serial of the fence rolled back to.
        serial: u64,
    },
    /// A message entered the mesh.
    NocHop {
        /// Source node.
        src: u16,
        /// Destination node.
        dst: u16,
        /// Mesh hop count for the route.
        hops: u16,
        /// Static message-kind label (e.g. `"GetX"`).
        msg: &'static str,
    },
    /// The directory NACKed a request to a busy line (protocol
    /// serialization, not a Bypass-Set bounce).
    DirNack {
        /// The busy line.
        line: LineAddr,
    },
    /// Synthesis search: a candidate assignment survived the oracle and
    /// was scored. Emitted by the `synth` engine (the "cycle" is the
    /// search step, not a simulated cycle; the "core" is the workload
    /// index in the run).
    SynthAccept {
        /// Weak-site bitmask of the candidate (bit `i` = group site `i`).
        mask: u64,
        /// Simulated cycles the scored run took.
        cycles: u64,
    },
    /// Synthesis search: a candidate assignment was rejected.
    SynthReject {
        /// Weak-site bitmask of the candidate.
        mask: u64,
        /// Static reason label (e.g. `"ws+:>1wf"`, `"oracle:scv"`).
        reason: &'static str,
    },
}

/// One structured trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event happened on.
    pub cycle: Cycle,
    /// Core (or NoC source node) the event belongs to.
    pub core: CoreId,
    /// What happened.
    pub kind: TraceKind,
}

/// A completed fence episode: the pairing of a
/// [`FenceIssue`](TraceKind::FenceIssue) with its
/// [`FenceComplete`](TraceKind::FenceComplete) (or the
/// [`Rollback`](TraceKind::Rollback) that squashed it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FenceSpan {
    /// Core the fence ran on.
    pub core: CoreId,
    /// Per-core fence serial (`(core, serial)` is the stable fence id).
    pub serial: u64,
    /// Hardware flavour at dispatch.
    pub class: FenceClass,
    /// Dispatch cycle.
    pub issue: Cycle,
    /// Completion (or rollback) cycle.
    pub complete: Cycle,
    /// Pre-fence store bounces attributed to this episode.
    pub bounces: u32,
    /// The fence demoted from Wee-weak to conventional.
    pub demoted: bool,
    /// The episode ended in a W+ rollback instead of completing.
    pub rolled_back: bool,
}

impl FenceSpan {
    /// Issue→complete latency in cycles.
    pub fn latency(&self) -> u64 {
        self.complete.saturating_sub(self.issue)
    }
}

/// Exact per-class aggregates over every fence episode, immune to ring
/// wrap-around.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FenceTally {
    /// Fences issued.
    pub issued: u64,
    /// Fences completed.
    pub completed: u64,
    /// Fences squashed by a W+ rollback.
    pub rolled_back: u64,
    /// Wee fences demoted to conventional.
    pub demoted: u64,
    /// Store bounces attributed to fences of this class.
    pub bounces: u64,
    /// Issue→complete latency histogram; bucket `i` counts latencies in
    /// `[2^i, 2^(i+1))` cycles (bucket 0 also holds latency 0).
    pub latency_buckets: [u64; LATENCY_BUCKETS],
    /// Bounces-per-fence histogram (see [`BOUNCE_BUCKETS`]).
    pub bounce_buckets: [u64; BOUNCE_BUCKETS],
    /// Sum of completed-fence latencies.
    pub total_latency: u64,
    /// Largest completed-fence latency.
    pub max_latency: u64,
}

impl FenceTally {
    /// Mean issue→complete latency over completed fences.
    pub fn mean_latency(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.completed as f64
        }
    }

    /// Approximate latency percentile (`p` in `0..=100`) from the log2
    /// buckets; returns the upper bound of the bucket the percentile
    /// falls in. This is what the stderr histogram report and the
    /// telemetry snapshot cite as p50/p90/p99.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.completed == 0 {
            return 0;
        }
        let target = (self.completed as f64 * p / 100.0).ceil() as u64;
        let mut seen = 0;
        for (i, n) in self.latency_buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return (1u64 << (i + 1)).saturating_sub(1).min(self.max_latency);
            }
        }
        self.max_latency
    }

    /// Mean store bounces per fence episode.
    pub fn bounces_per_fence(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.bounces as f64 / self.issued as f64
        }
    }

    /// Folds another tally into this one (bucket-wise sums, max of
    /// maxima). Associative with [`FenceTally::default`] as identity, so
    /// per-run tallies can be aggregated in any grouping — the telemetry
    /// collector relies on this to fold worker output deterministically.
    pub fn merge(&mut self, other: &FenceTally) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.rolled_back += other.rolled_back;
        self.demoted += other.demoted;
        self.bounces += other.bounces;
        for (a, b) in self.latency_buckets.iter_mut().zip(&other.latency_buckets) {
            *a += b;
        }
        for (a, b) in self.bounce_buckets.iter_mut().zip(&other.bounce_buckets) {
            *a += b;
        }
        self.total_latency += other.total_latency;
        self.max_latency = self.max_latency.max(other.max_latency);
    }

    fn close(&mut self, latency: u64, bounces: u32, rolled_back: bool) {
        self.bounce_buckets[(bounces as usize).min(BOUNCE_BUCKETS - 1)] += 1;
        if rolled_back {
            self.rolled_back += 1;
            return;
        }
        self.completed += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        let bucket = (latency.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.latency_buckets[bucket] += 1;
    }
}

/// A fixed-capacity ring: pushes beyond capacity evict the oldest entry.
#[derive(Clone, Debug)]
struct Ring<T> {
    cap: usize,
    buf: Vec<T>,
    next: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring {
            cap: cap.max(1),
            buf: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Oldest → newest.
    fn iter(&self) -> impl Iterator<Item = &T> {
        let (wrapped, head) = self.buf.split_at(self.next);
        head.iter().chain(wrapped.iter())
    }

    fn len(&self) -> usize {
        self.buf.len()
    }
}

#[derive(Clone, Copy, Debug)]
struct OpenFence {
    class: FenceClass,
    issue: Cycle,
    bounces: u32,
    demoted: bool,
}

/// The trace recorder. One per machine, owned by the memory system and
/// reachable from every layer that holds `&mut MemSystem`.
#[derive(Clone, Debug)]
pub struct TraceSink {
    design: FenceDesign,
    events: Ring<TraceEvent>,
    spans: Ring<FenceSpan>,
    open: HashMap<(usize, u64), OpenFence>,
    tallies: [FenceTally; 3],
    /// Bounces seen while the core had no open fence episode.
    unattributed_bounces: u64,
    recorded: u64,
}

impl TraceSink {
    /// A sink with the [`DEFAULT_CAPACITY`] event ring.
    pub fn new(design: FenceDesign) -> Self {
        TraceSink::with_capacity(design, DEFAULT_CAPACITY)
    }

    /// A sink whose event ring holds `capacity` events (the span ring
    /// gets a quarter of that).
    pub fn with_capacity(design: FenceDesign, capacity: usize) -> Self {
        TraceSink {
            design,
            events: Ring::new(capacity),
            spans: Ring::new((capacity / 4).max(1)),
            open: HashMap::new(),
            tallies: Default::default(),
            unattributed_bounces: 0,
            recorded: 0,
        }
    }

    /// The fence design stamped on this trace.
    pub fn design(&self) -> FenceDesign {
        self.design
    }

    /// Events currently held in the ring (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently in the ring.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Total events ever recorded (including ones the ring evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.events.dropped
    }

    /// Completed fence episodes still held (oldest first).
    pub fn spans(&self) -> Vec<&FenceSpan> {
        self.spans.iter().collect()
    }

    /// Exact aggregate tally for one fence class.
    pub fn tally(&self, class: FenceClass) -> &FenceTally {
        &self.tallies[class.idx()]
    }

    /// Store bounces that happened while their core had no open fence.
    pub fn unattributed_bounces(&self) -> u64 {
        self.unattributed_bounces
    }

    /// Records one event, updating fence pairing and the tallies.
    ///
    /// Recording is pure observation: it never changes simulation state,
    /// so traced and untraced runs are bit-identical.
    pub fn record(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        let c = ev.core.0;
        match ev.kind {
            TraceKind::FenceIssue { serial, class } => {
                self.tallies[class.idx()].issued += 1;
                self.open.insert(
                    (c, serial),
                    OpenFence {
                        class,
                        issue: ev.cycle,
                        bounces: 0,
                        demoted: false,
                    },
                );
            }
            TraceKind::FenceDemote { serial } => {
                if let Some(f) = self.open.get_mut(&(c, serial)) {
                    f.demoted = true;
                    self.tallies[f.class.idx()].demoted += 1;
                }
            }
            TraceKind::StoreBounce { .. } => {
                // Attribute the bounce to the core's oldest open fence:
                // that is the episode the bounced pre-fence store blocks.
                let oldest = self
                    .open
                    .keys()
                    .filter(|(core, _)| *core == c)
                    .map(|&(_, serial)| serial)
                    .min();
                match oldest {
                    Some(serial) => {
                        let f = self.open.get_mut(&(c, serial)).expect("open fence");
                        f.bounces += 1;
                        self.tallies[f.class.idx()].bounces += 1;
                    }
                    None => self.unattributed_bounces += 1,
                }
            }
            TraceKind::FenceComplete { serial } => {
                if let Some(f) = self.open.remove(&(c, serial)) {
                    self.close_span(ev.core, serial, f, ev.cycle, false);
                }
            }
            TraceKind::Rollback { .. } => {
                // Every open episode on this core is squashed; the fence
                // re-dispatches with a fresh serial after recovery.
                let mut squashed: Vec<u64> = self
                    .open
                    .keys()
                    .filter(|(core, _)| *core == c)
                    .map(|&(_, serial)| serial)
                    .collect();
                squashed.sort_unstable();
                for serial in squashed {
                    let f = self.open.remove(&(c, serial)).expect("open fence");
                    self.close_span(ev.core, serial, f, ev.cycle, true);
                }
            }
            _ => {}
        }
        self.events.push(ev);
    }

    fn close_span(
        &mut self,
        core: CoreId,
        serial: u64,
        f: OpenFence,
        end: Cycle,
        rolled_back: bool,
    ) {
        let span = FenceSpan {
            core,
            serial,
            class: f.class,
            issue: f.issue,
            complete: end,
            bounces: f.bounces,
            demoted: f.demoted,
            rolled_back,
        };
        self.tallies[f.class.idx()].close(span.latency(), f.bounces, rolled_back);
        self.spans.push(span);
    }

    /// Renders the trace as Chrome-trace/Perfetto JSON (the
    /// `traceEvents` array format): fence episodes become `ph:"X"`
    /// complete events (one track per core), everything else becomes
    /// `ph:"i"` instants. Timestamps are simulated cycles. Load the
    /// output at <https://ui.perfetto.dev> or `chrome://tracing`.
    pub fn chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.chrome_events(0));
        out.push_str("\n]}\n");
        out
    }

    /// The comma-separated `traceEvents` entries of
    /// [`chrome_json`](TraceSink::chrome_json) under process id `pid`, without the
    /// outer wrapper — lets a caller combine several sinks (e.g. one per
    /// fence design) into one Chrome-trace file, each as its own
    /// Perfetto process group.
    pub fn chrome_events(&self, pid: u64) -> String {
        let mut out = String::new();
        let mut first = true;
        let mut push = |out: &mut String, line: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(line);
        };

        let max_tid = self
            .spans
            .iter()
            .map(|s| s.core.0)
            .chain(self.events.iter().map(|e| e.core.0))
            .max()
            .unwrap_or(0);
        push(
            &mut out,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"asymfence {}\"}}}}",
                self.design.label()
            ),
        );
        for tid in 0..=max_tid {
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"core {tid}\"}}}}"
                ),
            );
        }

        for s in self.spans.iter() {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"name\":\"{} #{}\",\"cat\":\"fence\",\"ph\":\"X\",\"pid\":{pid},\
                 \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"serial\":{},\
                 \"class\":\"{}\",\"bounces\":{},\"demoted\":{},\"rolled_back\":{}}}}}",
                s.class.label(),
                s.serial,
                s.core.0,
                s.issue,
                s.latency().max(1),
                s.serial,
                s.class.label(),
                s.bounces,
                s.demoted,
                s.rolled_back,
            );
            push(&mut out, &line);
        }

        for e in self.events.iter() {
            // Issue/complete pairs are already rendered as spans.
            let (name, cat, args): (String, &str, String) = match e.kind {
                TraceKind::FenceIssue { .. } | TraceKind::FenceComplete { .. } => continue,
                TraceKind::FenceDemote { serial } => (
                    "wee-demote".into(),
                    "fence",
                    format!("\"serial\":{serial}"),
                ),
                TraceKind::OrderComplete { line, conditional } => (
                    if conditional { "cond-order" } else { "order" }.into(),
                    "order",
                    format!("\"line\":{}", line.raw()),
                ),
                TraceKind::StoreBounce { line, attempt } => (
                    "store-bounce".into(),
                    "fence",
                    format!("\"line\":{},\"attempt\":{attempt}", line.raw()),
                ),
                TraceKind::BsInsert { line } => {
                    ("bs-insert".into(), "bs", format!("\"line\":{}", line.raw()))
                }
                TraceKind::BsHit { line } => {
                    ("bs-bounce".into(), "bs", format!("\"line\":{}", line.raw()))
                }
                TraceKind::BsEvict { entries } => {
                    ("bs-evict".into(), "bs", format!("\"entries\":{entries}"))
                }
                TraceKind::Checkpoint { serial } => (
                    "checkpoint".into(),
                    "wplus",
                    format!("\"serial\":{serial}"),
                ),
                TraceKind::Rollback { serial } => (
                    "rollback".into(),
                    "wplus",
                    format!("\"serial\":{serial}"),
                ),
                TraceKind::NocHop {
                    src,
                    dst,
                    hops,
                    msg,
                } => (
                    format!("noc:{msg}"),
                    "noc",
                    format!("\"src\":{src},\"dst\":{dst},\"hops\":{hops}"),
                ),
                TraceKind::DirNack { line } => {
                    ("dir-nack".into(), "dir", format!("\"line\":{}", line.raw()))
                }
                TraceKind::SynthAccept { mask, cycles } => (
                    format!("synth-accept:wf{mask:b}"),
                    "synth",
                    format!("\"mask\":{mask},\"cycles\":{cycles}"),
                ),
                TraceKind::SynthReject { mask, reason } => (
                    format!("synth-reject:{reason}"),
                    "synth",
                    format!("\"mask\":{mask},\"reason\":\"{reason}\""),
                ),
            };
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":{pid},\"tid\":{},\"ts\":{},\"args\":{{{args}}}}}",
                e.core.0, e.cycle,
            );
            push(&mut out, &line);
        }
        out
    }
}

/// Records a [`TraceEvent`] iff a sink is attached.
///
/// `$sink` must evaluate to an `Option<&mut TraceSink>`; the event
/// expression is evaluated only when the sink is present, so a disabled
/// trace costs one branch per site.
///
/// ```
/// use asymfence_common::config::FenceDesign;
/// use asymfence_common::ids::CoreId;
/// use asymfence_common::trace::{TraceKind, TraceSink};
/// use asymfence_common::trace_event;
///
/// let mut sink = Some(TraceSink::new(FenceDesign::SPlus));
/// trace_event!(sink.as_mut(), 5, CoreId(0), TraceKind::Checkpoint { serial: 1 });
/// assert_eq!(sink.unwrap().len(), 1);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($sink:expr, $cycle:expr, $core:expr, $kind:expr) => {
        if let ::core::option::Option::Some(s) = $sink {
            s.record($crate::trace::TraceEvent {
                cycle: $cycle,
                core: $core,
                kind: $kind,
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: Cycle, core: usize, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            core: CoreId(core),
            kind,
        }
    }

    #[test]
    fn issue_complete_pairs_into_a_span() {
        let mut s = TraceSink::new(FenceDesign::WPlus);
        s.record(ev(10, 0, TraceKind::FenceIssue { serial: 1, class: FenceClass::Weak }));
        s.record(ev(12, 0, TraceKind::StoreBounce { line: LineAddr::from_raw(4), attempt: 1 }));
        s.record(ev(70, 0, TraceKind::FenceComplete { serial: 1 }));
        let spans = s.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].latency(), 60);
        assert_eq!(spans[0].bounces, 1);
        let t = s.tally(FenceClass::Weak);
        assert_eq!((t.issued, t.completed, t.bounces), (1, 1, 1));
        assert_eq!(t.latency_buckets[5], 1, "60 cycles lands in [32,64)");
    }

    #[test]
    fn rollback_squashes_open_fences() {
        let mut s = TraceSink::new(FenceDesign::WPlus);
        s.record(ev(10, 2, TraceKind::FenceIssue { serial: 1, class: FenceClass::Weak }));
        s.record(ev(20, 2, TraceKind::FenceIssue { serial: 2, class: FenceClass::Weak }));
        s.record(ev(500, 2, TraceKind::Rollback { serial: 1 }));
        let spans = s.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|sp| sp.rolled_back));
        assert_eq!(spans[0].serial, 1, "squashed spans close in serial order");
        let t = s.tally(FenceClass::Weak);
        assert_eq!((t.issued, t.completed, t.rolled_back), (2, 0, 2));
    }

    #[test]
    fn ring_evicts_oldest_but_tallies_stay_exact() {
        let mut s = TraceSink::with_capacity(FenceDesign::SPlus, 4);
        for i in 0..10 {
            s.record(ev(i, 0, TraceKind::FenceIssue { serial: i, class: FenceClass::Strong }));
            s.record(ev(i + 1, 0, TraceKind::FenceComplete { serial: i }));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped(), 16);
        assert_eq!(s.recorded(), 20);
        assert_eq!(s.tally(FenceClass::Strong).completed, 10, "exact despite eviction");
        let newest = s.events().last().unwrap();
        assert_eq!(newest.cycle, 10);
    }

    #[test]
    fn bounces_attach_to_the_oldest_open_fence() {
        let mut s = TraceSink::new(FenceDesign::WPlus);
        s.record(ev(1, 0, TraceKind::StoreBounce { line: LineAddr::from_raw(1), attempt: 1 }));
        assert_eq!(s.unattributed_bounces(), 1);
        s.record(ev(2, 0, TraceKind::FenceIssue { serial: 5, class: FenceClass::Weak }));
        s.record(ev(3, 0, TraceKind::FenceIssue { serial: 6, class: FenceClass::Weak }));
        s.record(ev(4, 0, TraceKind::StoreBounce { line: LineAddr::from_raw(1), attempt: 2 }));
        s.record(ev(9, 0, TraceKind::FenceComplete { serial: 5 }));
        assert_eq!(s.spans()[0].bounces, 1);
    }

    #[test]
    fn percentiles_come_from_buckets() {
        let mut t = FenceTally::default();
        for lat in [1u64, 2, 4, 800] {
            t.close(lat, 0, false);
        }
        assert_eq!(t.completed, 4);
        assert!(t.percentile(50.0) <= 7);
        assert_eq!(t.percentile(100.0), 800);
        assert_eq!(t.max_latency, 800);
    }

    #[test]
    fn tally_merge_matches_recording_in_one_sink() {
        // Recording episodes into two tallies and merging equals
        // recording them all into one (identity + associativity in the
        // shape the collector uses).
        let mut a = FenceTally::default();
        let mut b = FenceTally::default();
        let mut whole = FenceTally::default();
        for (into_a, lat) in [(true, 3u64), (true, 900), (false, 64), (false, 5)] {
            let t = if into_a { &mut a } else { &mut b };
            t.close(lat, 1, false);
            whole.close(lat, 1, false);
        }
        a.issued = 2;
        b.issued = 2;
        whole.issued = 4;
        let mut merged = FenceTally::default();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
        assert_eq!(merged.percentile(100.0), 900);
        let mut id = FenceTally::default();
        id.merge(&FenceTally::default());
        assert_eq!(id, FenceTally::default());
    }

    #[test]
    fn chrome_json_is_loadable_shape() {
        let mut s = TraceSink::new(FenceDesign::Wee);
        s.record(ev(10, 1, TraceKind::FenceIssue { serial: 1, class: FenceClass::WeeWeak }));
        s.record(ev(11, 1, TraceKind::NocHop { src: 1, dst: 0, hops: 1, msg: "GrtDepositAndRead" }));
        s.record(ev(40, 1, TraceKind::FenceComplete { serial: 1 }));
        let json = s.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"X\""), "fence span present");
        assert!(json.contains("noc:GrtDepositAndRead"));
        assert!(json.contains("\"name\":\"wee-wf #1\""));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces => structurally sound JSON for this grammar
        // (no strings with braces are ever embedded).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
