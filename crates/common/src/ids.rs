//! Strongly-typed identifiers used throughout the simulator.
//!
//! Byte addresses, cache-line addresses, word indices within a line, core
//! and directory-bank identifiers, and simulated-time cycles. Newtypes keep
//! the different address granularities from being mixed up (a line address
//! is a byte address shifted right by `log2(line_bytes)`).

use std::fmt;

/// A byte address in the simulated shared address space.
///
/// # Examples
///
/// ```
/// use asymfence_common::ids::Addr;
/// let a = Addr::new(0x100);
/// assert_eq!(a.raw(), 0x100);
/// assert_eq!(a.offset(8), Addr::new(0x108));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns this address displaced by `bytes`.
    pub fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// Index of the word this address falls in within its line.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` or `word_bytes` is zero.
    pub fn word_in_line(self, line_bytes: u64, word_bytes: u64) -> WordIdx {
        assert!(line_bytes > 0 && word_bytes > 0);
        WordIdx(((self.0 % line_bytes) / word_bytes) as u8)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line address: the byte address divided by the line size.
///
/// # Examples
///
/// ```
/// use asymfence_common::ids::{Addr, LineAddr};
/// let line = LineAddr::containing(Addr::new(0x47), 32);
/// assert_eq!(line, LineAddr::containing(Addr::new(0x5f), 32));
/// assert_ne!(line, LineAddr::containing(Addr::new(0x60), 32));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// The line containing byte address `addr` for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn containing(addr: Addr, line_bytes: u64) -> Self {
        assert!(line_bytes > 0);
        LineAddr(addr.raw() / line_bytes)
    }

    /// Creates a line address from its raw line number.
    pub const fn from_raw(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Raw line number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of this line.
    pub fn base(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }

    /// Directory bank (home node) for this line, interleaved by line address.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero.
    pub fn home_bank(self, num_banks: usize) -> BankId {
        assert!(num_banks > 0);
        BankId((self.0 % num_banks as u64) as usize)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Index of a word within a cache line (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct WordIdx(pub u8);

impl WordIdx {
    /// Bit in a per-line word mask corresponding to this word.
    pub fn mask_bit(self) -> u32 {
        1 << self.0
    }
}

/// Identifier of a simulated core (and its private L1 / network node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a directory/L2 bank. Banks are co-located with cores
/// (bank *i* shares the mesh node of core *i*).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BankId(pub usize);

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Simulated time, in clock cycles.
pub type Cycle = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_word_in_line() {
        let line_bytes = 32;
        let word_bytes = 8;
        assert_eq!(Addr::new(0).word_in_line(line_bytes, word_bytes), WordIdx(0));
        assert_eq!(Addr::new(8).word_in_line(line_bytes, word_bytes), WordIdx(1));
        assert_eq!(Addr::new(31).word_in_line(line_bytes, word_bytes), WordIdx(3));
        assert_eq!(Addr::new(32).word_in_line(line_bytes, word_bytes), WordIdx(0));
        assert_eq!(Addr::new(0x47).word_in_line(line_bytes, word_bytes), WordIdx(0));
    }

    #[test]
    fn line_containing_and_base() {
        let l = LineAddr::containing(Addr::new(100), 32);
        assert_eq!(l.raw(), 3);
        assert_eq!(l.base(32), Addr::new(96));
    }

    #[test]
    fn home_bank_interleaves() {
        let banks = 8;
        let homes: Vec<usize> = (0..16)
            .map(|i| LineAddr::from_raw(i).home_bank(banks).0)
            .collect();
        assert_eq!(homes[..8], [0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(homes[8..], [0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn word_mask_bits_distinct() {
        let bits: Vec<u32> = (0..4).map(|w| WordIdx(w).mask_bit()).collect();
        assert_eq!(bits, [1, 2, 4, 8]);
    }

    #[test]
    fn display_impls_nonempty() {
        assert_eq!(format!("{}", CoreId(3)), "P3");
        assert_eq!(format!("{}", BankId(2)), "B2");
        assert_eq!(format!("{}", Addr::new(16)), "0x10");
        assert_eq!(format!("{}", LineAddr::from_raw(2)), "L0x2");
    }
}
