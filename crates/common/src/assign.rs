//! Per-site fence-strength assignments and synthesis search statistics.
//!
//! A [`FenceAssignment`] maps *static fence sites* (raw `u32` ids; the
//! cpu crate wraps them in its `FenceSite` newtype) to an explicit
//! [`SiteStrength`]. When a machine config carries an assignment, the
//! core consults it at fence dispatch **before** the design's role-based
//! mapping; sites the assignment does not mention — and every anonymous
//! site — fall through to the role mapping, so an absent or empty
//! assignment reproduces the pre-assignment behaviour bit for bit.
//!
//! Assignments are plain ordered data: two assignments compare equal
//! independently of insertion order, and [`FenceAssignment::key`] is a
//! stable 64-bit encoding used to memoize oracle/scoring runs in the
//! synthesis engine.
//!
//! # Examples
//!
//! ```
//! use asymfence_common::assign::{FenceAssignment, SiteStrength};
//!
//! let a = FenceAssignment::from_weak_mask(&[0, 1, 2], 0b101);
//! assert_eq!(a.strength(0), Some(SiteStrength::Weak));
//! assert_eq!(a.strength(1), Some(SiteStrength::Strong));
//! assert_eq!(a.weak_count(), 2);
//! assert_eq!(a.label(), "wf@{0,2}");
//! assert_eq!(a.strength(9), None, "unmentioned sites use the role mapping");
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::rng::mix64;

/// First site id reserved for *synthetic* fence sites — program points
/// the analyzer invents when inferring a placement. Hand-annotated
/// kernels number their sites from 0, so the two ranges never collide
/// and an assignment can mention both.
pub const SYNTHETIC_BASE: u32 = 0x8000_0000;

/// The `i`-th synthetic site id ([`SYNTHETIC_BASE`]` + i`).
///
/// # Panics
///
/// Panics if the id would wrap past `u32::MAX` (which the cpu crate
/// reserves for anonymous fences).
pub const fn synthetic_site(i: u32) -> u32 {
    assert!(i < u32::MAX - SYNTHETIC_BASE, "synthetic site id overflow");
    SYNTHETIC_BASE + i
}

/// Whether `site` is in the synthetic (analyzer-placed) range.
pub const fn is_synthetic(site: u32) -> bool {
    site >= SYNTHETIC_BASE && site != u32::MAX
}

/// The hardware strength chosen for one fence site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SiteStrength {
    /// Weak fence (`wf`): post-fence accesses may complete early.
    Weak,
    /// Conventional strong fence (`sf`).
    Strong,
}

impl SiteStrength {
    /// The paper's short name (`wf` / `sf`).
    pub fn label(self) -> &'static str {
        match self {
            SiteStrength::Weak => "wf",
            SiteStrength::Strong => "sf",
        }
    }
}

/// An explicit per-site wf/sf choice overriding the role mapping.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FenceAssignment {
    sites: BTreeMap<u32, SiteStrength>,
}

impl FenceAssignment {
    /// An empty assignment (every fence falls through to role mapping).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an assignment over `sites` from a weak-site bitmask:
    /// bit `i` set makes `sites[i]` weak, clear makes it strong. Every
    /// listed site is mentioned, so the role mapping never applies to it.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 sites are given.
    pub fn from_weak_mask(sites: &[u32], weak_mask: u64) -> Self {
        assert!(sites.len() <= 64, "mask encoding holds at most 64 sites");
        let mut a = FenceAssignment::new();
        for (i, &s) in sites.iter().enumerate() {
            let strength = if weak_mask & (1 << i) != 0 {
                SiteStrength::Weak
            } else {
                SiteStrength::Strong
            };
            a.set(s, strength);
        }
        a
    }

    /// Sets (or overwrites) one site's strength.
    pub fn set(&mut self, site: u32, strength: SiteStrength) {
        self.sites.insert(site, strength);
    }

    /// Upgrades `site` to strong, inserting it if unmentioned. Never
    /// weakens: a site already strong stays strong. Used by placement
    /// repair loops that harden one site at a time.
    pub fn strengthen(&mut self, site: u32) {
        self.sites.insert(site, SiteStrength::Strong);
    }

    /// The strength assigned to `site`, if mentioned.
    pub fn strength(&self, site: u32) -> Option<SiteStrength> {
        self.sites.get(&site).copied()
    }

    /// Number of sites mentioned.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site is mentioned.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sites assigned weak, ascending.
    pub fn weak_sites(&self) -> impl Iterator<Item = u32> + '_ {
        self.sites
            .iter()
            .filter(|(_, &s)| s == SiteStrength::Weak)
            .map(|(&k, _)| k)
    }

    /// How many sites are weak.
    pub fn weak_count(&self) -> usize {
        self.weak_sites().count()
    }

    /// Stable 64-bit key of the full mapping (memoization of oracle and
    /// scoring runs). Equal assignments always produce equal keys; the
    /// key is a hash, so unequal assignments collide only with ordinary
    /// 64-bit-hash probability.
    pub fn key(&self) -> u64 {
        let mut acc = 0xA51F_0000_2015_0000u64;
        for (&site, &strength) in &self.sites {
            acc = mix64(&[acc, site as u64, strength as u64 + 1]);
        }
        acc
    }

    /// Compact human label: `wf@{i,j}` for the weak sites (or `all-sf`
    /// when every mentioned site is strong).
    pub fn label(&self) -> String {
        let weak: Vec<String> = self.weak_sites().map(|s| s.to_string()).collect();
        if weak.is_empty() {
            "all-sf".to_string()
        } else {
            format!("wf@{{{}}}", weak.join(","))
        }
    }
}

impl fmt::Display for FenceAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Counters describing one synthesis search (per workload × design).
///
/// Merged across parallel evaluation batches; all fields are
/// order-independent sums, so reports are identical at any worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate assignments enumerated.
    pub enumerated: u64,
    /// Candidates rejected by the design's structural constraint.
    pub pruned: u64,
    /// Candidates the SC oracle rejected under some perturbation seed.
    pub oracle_rejected: u64,
    /// Candidates that passed the oracle and were scored.
    pub valid: u64,
    /// Evaluations answered from the assignment-hash memo table.
    pub memo_hits: u64,
    /// Serial-equivalent simulator runs charged (oracle + scoring).
    pub runs: u64,
}

impl SearchStats {
    /// Accumulates another batch of counters.
    pub fn merge(&mut self, other: &SearchStats) {
        self.enumerated += other.enumerated;
        self.pruned += other.pruned;
        self.oracle_rejected += other.oracle_rejected;
        self.valid += other.valid;
        self.memo_hits += other.memo_hits;
        self.runs += other.runs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_round_trips_and_orders() {
        let sites = [4u32, 1, 9];
        let a = FenceAssignment::from_weak_mask(&sites, 0b011);
        assert_eq!(a.strength(4), Some(SiteStrength::Weak));
        assert_eq!(a.strength(1), Some(SiteStrength::Weak));
        assert_eq!(a.strength(9), Some(SiteStrength::Strong));
        assert_eq!(a.weak_sites().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(a.label(), "wf@{1,4}");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn equality_is_insertion_order_independent() {
        let mut a = FenceAssignment::new();
        a.set(3, SiteStrength::Weak);
        a.set(1, SiteStrength::Strong);
        let mut b = FenceAssignment::new();
        b.set(1, SiteStrength::Strong);
        b.set(3, SiteStrength::Weak);
        assert_eq!(a, b);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn keys_separate_distinct_assignments() {
        let sites = [0u32, 1, 2, 3];
        let keys: std::collections::HashSet<u64> = (0..16u64)
            .map(|m| FenceAssignment::from_weak_mask(&sites, m).key())
            .collect();
        assert_eq!(keys.len(), 16, "16 masks must hash to 16 keys");
    }

    #[test]
    fn all_strong_label() {
        let a = FenceAssignment::from_weak_mask(&[7, 8], 0);
        assert_eq!(a.label(), "all-sf");
        assert_eq!(a.weak_count(), 0);
        assert!(!a.is_empty());
    }

    #[test]
    fn synthetic_ids_are_disjoint_from_hand_sites() {
        assert!(is_synthetic(synthetic_site(0)));
        assert!(is_synthetic(synthetic_site(15)));
        assert!(!is_synthetic(0));
        assert!(!is_synthetic(63));
        assert!(!is_synthetic(u32::MAX), "anonymous site is not synthetic");
        assert_eq!(synthetic_site(3), SYNTHETIC_BASE + 3);
    }

    #[test]
    fn strengthen_inserts_and_never_weakens() {
        let mut a = FenceAssignment::from_weak_mask(&[0, 1], 0b01);
        a.strengthen(0);
        assert_eq!(a.strength(0), Some(SiteStrength::Strong));
        a.strengthen(0);
        assert_eq!(a.strength(0), Some(SiteStrength::Strong));
        a.strengthen(9);
        assert_eq!(a.strength(9), Some(SiteStrength::Strong));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = SearchStats {
            enumerated: 4,
            pruned: 1,
            oracle_rejected: 1,
            valid: 2,
            memo_hits: 0,
            runs: 20,
        };
        let b = SearchStats {
            enumerated: 2,
            pruned: 0,
            oracle_rejected: 0,
            valid: 2,
            memo_hits: 1,
            runs: 8,
        };
        a.merge(&b);
        assert_eq!(a.enumerated, 6);
        assert_eq!(a.valid, 4);
        assert_eq!(a.runs, 28);
        assert_eq!(a.memo_hits, 1);
    }
}
