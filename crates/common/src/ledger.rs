//! The sharded-sweep run ledger: versioned, append-only JSONL records
//! with torn-tail recovery.
//!
//! A sharded sweep partitions a benchmark grid across processes; each
//! shard appends its lifecycle to its own `shard-<K>.jsonl` file in the
//! ledger directory — a [`ClaimRecord`] when it starts (or resumes), a
//! [`HeartbeatRecord`] every few cells (progress, throughput and RSS for
//! the live dashboard), a [`CellRecord`] with the *exact* simulation
//! output of every completed grid cell, and a [`DoneRecord`] when its
//! partition is finished. Because every record is one `write(2)` of one
//! complete line, the only damage a SIGKILL can do is a torn final line:
//! [`read_shard_log`] treats bytes after the last parseable terminated
//! line as torn, and [`recover_for_append`] truncates them away so the
//! shard resumes from its last durable record.
//!
//! Records are versioned ([`LEDGER_VERSION`]): a record whose `v` or
//! `kind` this build does not understand is *skipped with a warning
//! count*, never a hard error, so a newer writer's ledger still merges
//! on an older reader (mirroring the additive-schema rule of
//! [`crate::telemetry`]). Serialization uses the in-repo
//! [`Json`] value compactly rendered — one line
//! per record, deterministic bytes.
//!
//! The crucial property, inherited from [`MachineStats::merge`] /
//! [`FenceTally::merge`] associativity: a [`CellRecord`] carries the
//! full per-run output (stats, per-class tallies, counters), so folding
//! cell records *in grid-index order* reproduces the single-process
//! metrics collector byte-for-byte, no matter how many shards produced
//! them or how often those shards crashed and resumed.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::stats::{CoreStats, MachineStats, TrafficStats};
use crate::telemetry::Json;
use crate::trace::{FenceTally, BOUNCE_BUCKETS, LATENCY_BUCKETS};

/// Version stamped into every record's `v` field. Bump when a record's
/// meaning changes incompatibly; readers skip versions they don't know.
pub const LEDGER_VERSION: u64 = 1;

/// File-name prefix of per-shard ledger files (`shard-<K>.jsonl`).
pub const SHARD_FILE_PREFIX: &str = "shard-";

/// File-name suffix of per-shard ledger files.
pub const SHARD_FILE_SUFFIX: &str = ".jsonl";

/// The ledger file for shard `id` inside directory `dir`.
pub fn shard_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("{SHARD_FILE_PREFIX}{id}{SHARD_FILE_SUFFIX}"))
}

/// A shard announcing itself: written once per process start, so the
/// number of claims in a shard file minus one is its resume count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClaimRecord {
    /// This shard's id (`0..shards`).
    pub shard: u64,
    /// Total shard count the grid was partitioned into.
    pub shards: u64,
    /// Grid label (e.g. `quick` / `full`); claims in one ledger
    /// directory must agree on it.
    pub grid: String,
    /// Total cells in the (unsharded) grid; must agree across claims.
    pub cells: u64,
    /// Cells this shard owns.
    pub owned: u64,
    /// How many claims preceded this one in the file (0 = first start,
    /// >0 = crash/kill resume).
    pub resume: u64,
    /// The run collects deterministic (timing-masked) telemetry.
    pub deterministic: bool,
    /// The run uses the `--quick` grid.
    pub quick: bool,
    /// OS process id, for the status dashboard.
    pub pid: u64,
}

/// Periodic progress: appended every few completed cells so `sweep
/// status` can render throughput, ETA and stall detection while the
/// fleet runs. Wall-clock fields here are *real* even in deterministic
/// mode — heartbeats never merge into a snapshot, and a dashboard with
/// masked throughput would be useless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatRecord {
    /// Shard id.
    pub shard: u64,
    /// Cells this shard has completed (including prior-life cells after
    /// a resume).
    pub done: u64,
    /// Cells this shard owns.
    pub owned: u64,
    /// Simulated cycles accumulated by this shard so far.
    pub sim_cycles: u64,
    /// Wall-clock nanoseconds since this shard (re)started.
    pub wall_ns: u64,
    /// Peak RSS of the shard process in bytes (0 off-Linux).
    pub peak_rss_bytes: u64,
    /// Unix epoch milliseconds when the heartbeat was written; the
    /// dashboard ages it to detect stalled/dead shards.
    pub ts_ms: u64,
}

/// The durable result of one grid cell: everything the metrics
/// collector folds, so the merged snapshot needs nothing but cell
/// records (in index order) to be byte-identical to a single-process
/// run.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// Grid index of the cell (global across shards).
    pub index: u64,
    /// Report section the cell belongs to.
    pub section: String,
    /// Workload name (spec label component).
    pub workload: String,
    /// Fence-design label.
    pub design: String,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
    /// A sequential-consistency violation was observed.
    pub scv: bool,
    /// Wall-clock of the run, ns (masked to 0 in deterministic mode,
    /// exactly like the in-process collector).
    pub wall_ns: u64,
    /// Full machine statistics of the run.
    pub stats: MachineStats,
    /// Per-class fence tallies (`FenceClass::ALL` order: sf, wf, wee-wf).
    pub tallies: [FenceTally; 3],
}

/// A shard marking its partition complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoneRecord {
    /// Shard id.
    pub shard: u64,
    /// Cells completed (equals `owned` of the claim).
    pub done: u64,
    /// Wall-clock nanoseconds of the shard's final life.
    pub wall_ns: u64,
}

/// Any ledger record.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// Shard start/resume announcement.
    Claim(ClaimRecord),
    /// Periodic progress.
    Heartbeat(HeartbeatRecord),
    /// One completed grid cell (boxed: a cell carries full machine
    /// stats and three tallies, far bigger than the other variants).
    Cell(Box<CellRecord>),
    /// Shard completion marker.
    Done(DoneRecord),
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn u64s_arr(vals: &[u64]) -> Json {
    Json::Arr(vals.iter().map(|&v| num(v)).collect())
}

fn stats_to_json(s: &MachineStats) -> Json {
    Json::Obj(vec![
        ("cycles".to_string(), num(s.cycles)),
        ("deadlocked".to_string(), Json::Bool(s.deadlocked)),
        (
            "traffic".to_string(),
            u64s_arr(&[
                s.traffic.base_bytes,
                s.traffic.retry_bytes,
                s.traffic.messages,
            ]),
        ),
        (
            "cores".to_string(),
            Json::Arr(s.cores.iter().map(|c| u64s_arr(&c.values())).collect()),
        ),
    ])
}

fn tally_to_json(t: &FenceTally) -> Json {
    Json::Obj(vec![
        ("issued".to_string(), num(t.issued)),
        ("completed".to_string(), num(t.completed)),
        ("rolled_back".to_string(), num(t.rolled_back)),
        ("demoted".to_string(), num(t.demoted)),
        ("bounces".to_string(), num(t.bounces)),
        ("latency".to_string(), u64s_arr(&t.latency_buckets)),
        ("bounce".to_string(), u64s_arr(&t.bounce_buckets)),
        ("total_latency".to_string(), num(t.total_latency)),
        ("max_latency".to_string(), num(t.max_latency)),
    ])
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("record missing integer `{key}`"))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("record missing bool `{key}`"))
}

fn get_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("record missing string `{key}`"))
}

fn get_u64s(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("record missing array `{key}`"))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("`{key}` has a non-integer")))
        .collect()
}

fn stats_from_json(v: &Json) -> Result<MachineStats, String> {
    let traffic = get_u64s(v, "traffic")?;
    if traffic.len() != 3 {
        return Err("stats `traffic` must have 3 elements".to_string());
    }
    let mut cores = Vec::new();
    for c in v
        .get("cores")
        .and_then(Json::as_arr)
        .ok_or("stats missing `cores`".to_string())?
    {
        let vals: Vec<u64> = c
            .as_arr()
            .ok_or("core is not an array".to_string())?
            .iter()
            .map(|x| x.as_u64().ok_or("core counter is not an integer".to_string()))
            .collect::<Result<_, _>>()?;
        cores.push(
            CoreStats::from_values(&vals)
                .ok_or_else(|| format!("core has {} counters, expected {}", vals.len(), CoreStats::FIELDS))?,
        );
    }
    Ok(MachineStats {
        cycles: get_u64(v, "cycles")?,
        cores,
        traffic: TrafficStats {
            base_bytes: traffic[0],
            retry_bytes: traffic[1],
            messages: traffic[2],
        },
        deadlocked: get_bool(v, "deadlocked")?,
    })
}

fn tally_from_json(v: &Json) -> Result<FenceTally, String> {
    let latency = get_u64s(v, "latency")?;
    let bounce = get_u64s(v, "bounce")?;
    if latency.len() != LATENCY_BUCKETS || bounce.len() != BOUNCE_BUCKETS {
        return Err("tally histogram length mismatch".to_string());
    }
    let mut t = FenceTally {
        issued: get_u64(v, "issued")?,
        completed: get_u64(v, "completed")?,
        rolled_back: get_u64(v, "rolled_back")?,
        demoted: get_u64(v, "demoted")?,
        bounces: get_u64(v, "bounces")?,
        total_latency: get_u64(v, "total_latency")?,
        max_latency: get_u64(v, "max_latency")?,
        ..Default::default()
    };
    t.latency_buckets.copy_from_slice(&latency);
    t.bounce_buckets.copy_from_slice(&bounce);
    Ok(t)
}

impl Record {
    /// The record's `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Record::Claim(_) => "claim",
            Record::Heartbeat(_) => "heartbeat",
            Record::Cell(_) => "cell",
            Record::Done(_) => "done",
        }
    }

    /// Serializes the record as one compact JSON line (no trailing
    /// newline; the writer appends it).
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("v".to_string(), num(LEDGER_VERSION)),
            ("kind".to_string(), Json::Str(self.kind().to_string())),
        ];
        match self {
            Record::Claim(c) => fields.extend([
                ("shard".to_string(), num(c.shard)),
                ("shards".to_string(), num(c.shards)),
                ("grid".to_string(), Json::Str(c.grid.clone())),
                ("cells".to_string(), num(c.cells)),
                ("owned".to_string(), num(c.owned)),
                ("resume".to_string(), num(c.resume)),
                ("deterministic".to_string(), Json::Bool(c.deterministic)),
                ("quick".to_string(), Json::Bool(c.quick)),
                ("pid".to_string(), num(c.pid)),
            ]),
            Record::Heartbeat(h) => fields.extend([
                ("shard".to_string(), num(h.shard)),
                ("done".to_string(), num(h.done)),
                ("owned".to_string(), num(h.owned)),
                ("sim_cycles".to_string(), num(h.sim_cycles)),
                ("wall_ns".to_string(), num(h.wall_ns)),
                ("peak_rss_bytes".to_string(), num(h.peak_rss_bytes)),
                ("ts_ms".to_string(), num(h.ts_ms)),
            ]),
            Record::Cell(c) => fields.extend([
                ("index".to_string(), num(c.index)),
                ("section".to_string(), Json::Str(c.section.clone())),
                ("workload".to_string(), Json::Str(c.workload.clone())),
                ("design".to_string(), Json::Str(c.design.clone())),
                ("cycles".to_string(), num(c.cycles)),
                ("commits".to_string(), num(c.commits)),
                ("aborts".to_string(), num(c.aborts)),
                ("scv".to_string(), Json::Bool(c.scv)),
                ("wall_ns".to_string(), num(c.wall_ns)),
                ("stats".to_string(), stats_to_json(&c.stats)),
                (
                    "tallies".to_string(),
                    Json::Arr(c.tallies.iter().map(tally_to_json).collect()),
                ),
            ]),
            Record::Done(d) => fields.extend([
                ("shard".to_string(), num(d.shard)),
                ("done".to_string(), num(d.done)),
                ("wall_ns".to_string(), num(d.wall_ns)),
            ]),
        }
        Json::Obj(fields).render_compact()
    }

    /// Parses one ledger line. `Ok(None)` means the line is valid JSON
    /// carrying a version or kind this build does not understand — the
    /// caller skips it (counting a warning) instead of failing, so newer
    /// writers stay mergeable. `Err` means the line is not a ledger
    /// record at all (corruption — or a torn tail, which the file reader
    /// handles before calling this).
    pub fn parse_line(line: &str) -> Result<Option<Record>, String> {
        let v = Json::parse(line)?;
        let version = get_u64(&v, "v")?;
        if version != LEDGER_VERSION {
            return Ok(None);
        }
        let kind = get_str(&v, "kind")?;
        let rec = match kind.as_str() {
            "claim" => Record::Claim(ClaimRecord {
                shard: get_u64(&v, "shard")?,
                shards: get_u64(&v, "shards")?,
                grid: get_str(&v, "grid")?,
                cells: get_u64(&v, "cells")?,
                owned: get_u64(&v, "owned")?,
                resume: get_u64(&v, "resume")?,
                deterministic: get_bool(&v, "deterministic")?,
                quick: get_bool(&v, "quick")?,
                pid: get_u64(&v, "pid")?,
            }),
            "heartbeat" => Record::Heartbeat(HeartbeatRecord {
                shard: get_u64(&v, "shard")?,
                done: get_u64(&v, "done")?,
                owned: get_u64(&v, "owned")?,
                sim_cycles: get_u64(&v, "sim_cycles")?,
                wall_ns: get_u64(&v, "wall_ns")?,
                peak_rss_bytes: get_u64(&v, "peak_rss_bytes")?,
                ts_ms: get_u64(&v, "ts_ms")?,
            }),
            "cell" => Record::Cell(Box::new(CellRecord {
                index: get_u64(&v, "index")?,
                section: get_str(&v, "section")?,
                workload: get_str(&v, "workload")?,
                design: get_str(&v, "design")?,
                cycles: get_u64(&v, "cycles")?,
                commits: get_u64(&v, "commits")?,
                aborts: get_u64(&v, "aborts")?,
                scv: get_bool(&v, "scv")?,
                wall_ns: get_u64(&v, "wall_ns")?,
                stats: stats_from_json(
                    v.get("stats").ok_or("cell missing `stats`".to_string())?,
                )?,
                tallies: {
                    let arr = v
                        .get("tallies")
                        .and_then(Json::as_arr)
                        .ok_or("cell missing `tallies`".to_string())?;
                    if arr.len() != 3 {
                        return Err("cell `tallies` must have 3 classes".to_string());
                    }
                    [
                        tally_from_json(&arr[0])?,
                        tally_from_json(&arr[1])?,
                        tally_from_json(&arr[2])?,
                    ]
                },
            })),
            "done" => Record::Done(DoneRecord {
                shard: get_u64(&v, "shard")?,
                done: get_u64(&v, "done")?,
                wall_ns: get_u64(&v, "wall_ns")?,
            }),
            _ => return Ok(None),
        };
        Ok(Some(rec))
    }
}

/// Appends one record as a single `write(2)` of one terminated line.
/// A record is durable against SIGKILL once this returns (the page
/// cache survives process death; only machine crashes need fsync, which
/// sweeps deliberately skip for throughput).
pub fn append_record(file: &mut File, rec: &Record) -> Result<(), String> {
    let mut line = rec.to_line();
    line.push('\n');
    file.write_all(line.as_bytes())
        .map_err(|e| format!("ledger append failed: {e}"))
}

/// Everything read from one shard's ledger file, records bucketed by
/// kind (each bucket in file order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardLog {
    /// Start/resume claims.
    pub claims: Vec<ClaimRecord>,
    /// Heartbeats.
    pub heartbeats: Vec<HeartbeatRecord>,
    /// Completed cells (possibly with duplicate indices after a resume
    /// that re-ran an un-journaled cell; mergers keep the first).
    pub cells: Vec<CellRecord>,
    /// Completion markers.
    pub done: Vec<DoneRecord>,
    /// Lines skipped because their version/kind is unknown.
    pub skipped_unknown: u64,
    /// Torn bytes at the tail (0 for a cleanly written file).
    pub torn_bytes: u64,
    /// Byte length of the valid prefix (file length minus torn tail).
    pub valid_len: u64,
}

impl ShardLog {
    /// The shard's latest claim (current life), if any.
    pub fn claim(&self) -> Option<&ClaimRecord> {
        self.claims.last()
    }
}

/// Reads a shard ledger file with torn-tail recovery. A missing file is
/// an empty log (a shard that has not started). Bytes after the last
/// newline are torn; a *terminated* final line that fails to parse is
/// also treated as torn (defense in depth — some filesystems pad tails
/// with zeros after a crash). A parse failure anywhere *before* the
/// final line is real corruption and a hard error.
pub fn read_shard_log(path: &Path) -> Result<ShardLog, String> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ShardLog::default()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut log = ShardLog::default();
    // Offsets of each terminated line: (start, end_after_newline).
    let mut lines: Vec<(usize, usize)> = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            lines.push((start, i + 1));
            start = i + 1;
        }
    }
    let mut valid_end = 0;
    for (li, &(s, e)) in lines.iter().enumerate() {
        let last = li == lines.len() - 1;
        let parsed = std::str::from_utf8(&bytes[s..e - 1])
            .map_err(|e| e.to_string())
            .and_then(Record::parse_line);
        match parsed {
            Ok(Some(rec)) => {
                match rec {
                    Record::Claim(c) => log.claims.push(c),
                    Record::Heartbeat(h) => log.heartbeats.push(h),
                    Record::Cell(c) => log.cells.push(*c),
                    Record::Done(d) => log.done.push(d),
                }
                valid_end = e;
            }
            Ok(None) => {
                log.skipped_unknown += 1;
                valid_end = e;
            }
            Err(err) if last => {
                // Terminated but unparseable tail line: torn, cut it.
                let _ = err;
                break;
            }
            Err(err) => {
                return Err(format!(
                    "{}: corrupt ledger record on line {}: {err}",
                    path.display(),
                    li + 1
                ));
            }
        }
    }
    log.torn_bytes = (bytes.len() - valid_end) as u64;
    log.valid_len = valid_end as u64;
    Ok(log)
}

/// Opens a shard ledger file for appending after recovery: reads it with
/// [`read_shard_log`], truncates any torn tail away, and returns the
/// parsed log together with a writer positioned at the end of the valid
/// prefix. This is the resume entry point — the returned log tells the
/// shard which cells are already durable.
pub fn recover_for_append(path: &Path) -> Result<(ShardLog, File), String> {
    let log = read_shard_log(path)?;
    let mut file = OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false)
        .open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    file.set_len(log.valid_len)
        .map_err(|e| format!("cannot truncate torn tail of {}: {e}", path.display()))?;
    file.seek(SeekFrom::End(0))
        .map_err(|e| format!("cannot seek {}: {e}", path.display()))?;
    Ok((log, file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell(index: u64) -> CellRecord {
        let mut stats = MachineStats {
            cycles: 1000 + index,
            deadlocked: false,
            ..Default::default()
        };
        stats.traffic = TrafficStats {
            base_bytes: 4096,
            retry_bytes: 128,
            messages: 77,
        };
        let core = CoreStats::from_values(
            &(1..=CoreStats::FIELDS as u64).map(|i| i * 3 + index).collect::<Vec<_>>(),
        )
        .unwrap();
        stats.cores = vec![core, CoreStats::default()];
        let mut tally = FenceTally {
            issued: 10,
            completed: 9,
            total_latency: 420,
            max_latency: 99,
            ..Default::default()
        };
        tally.latency_buckets[3] = 9;
        tally.bounce_buckets[0] = 9;
        CellRecord {
            index,
            section: "litmus".to_string(),
            workload: "sb-fenced".to_string(),
            design: "WS+".to_string(),
            cycles: 1000 + index,
            commits: 5,
            aborts: 1,
            scv: false,
            wall_ns: 0,
            stats,
            tallies: [tally, FenceTally::default(), FenceTally::default()],
        }
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Claim(ClaimRecord {
                shard: 1,
                shards: 3,
                grid: "quick".to_string(),
                cells: 56,
                owned: 19,
                resume: 0,
                deterministic: true,
                quick: true,
                pid: 4242,
            }),
            Record::Cell(Box::new(sample_cell(1))),
            Record::Heartbeat(HeartbeatRecord {
                shard: 1,
                done: 1,
                owned: 19,
                sim_cycles: 1001,
                wall_ns: 5_000_000,
                peak_rss_bytes: 10 << 20,
                ts_ms: 1_700_000_000_000,
            }),
            Record::Done(DoneRecord {
                shard: 1,
                done: 19,
                wall_ns: 9_000_000,
            }),
        ]
    }

    fn tmp_file(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "asf-ledger-{tag}-{}-{}.jsonl",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn records_round_trip_one_line_each() {
        for rec in sample_records() {
            let line = rec.to_line();
            assert!(!line.contains('\n'), "{line}");
            let back = Record::parse_line(&line).unwrap().unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn unknown_version_and_kind_skip_not_fail() {
        let newer = r#"{"v":2,"kind":"cell","future":"stuff"}"#;
        assert_eq!(Record::parse_line(newer).unwrap(), None);
        let exotic = r#"{"v":1,"kind":"gc-pause","ms":12}"#;
        assert_eq!(Record::parse_line(exotic).unwrap(), None);
        // Valid JSON but not a record at all is an error.
        assert!(Record::parse_line(r#"{"hello":true}"#).is_err());
        assert!(Record::parse_line("not json").is_err());
    }

    #[test]
    fn read_recovers_torn_tail() {
        let path = tmp_file("torn");
        let recs = sample_records();
        let mut content = String::new();
        for r in &recs[..2] {
            content.push_str(&r.to_line());
            content.push('\n');
        }
        let valid = content.len() as u64;
        // Simulate a SIGKILL mid-append: half of record 3.
        let half = recs[2].to_line();
        content.push_str(&half[..half.len() / 2]);
        std::fs::write(&path, &content).unwrap();

        let log = read_shard_log(&path).unwrap();
        assert_eq!(log.claims.len(), 1);
        assert_eq!(log.cells.len(), 1);
        assert_eq!(log.heartbeats.len(), 0);
        assert_eq!(log.valid_len, valid);
        assert_eq!(log.torn_bytes, (half.len() / 2) as u64);

        // recover_for_append truncates the tail and appends cleanly.
        let (log2, mut file) = recover_for_append(&path).unwrap();
        assert_eq!(log2, log);
        append_record(&mut file, &recs[2]).unwrap();
        drop(file);
        let reread = read_shard_log(&path).unwrap();
        assert_eq!(reread.torn_bytes, 0);
        assert_eq!(reread.heartbeats.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn terminated_garbage_tail_is_torn_but_interior_garbage_is_corruption() {
        let path = tmp_file("tail");
        let claim = sample_records()[0].to_line();
        std::fs::write(&path, format!("{claim}\n\u{0}\u{0}\u{0}\n")).unwrap();
        let log = read_shard_log(&path).unwrap();
        assert_eq!(log.claims.len(), 1);
        assert_eq!(log.torn_bytes, 4);

        std::fs::write(&path, format!("garbage\n{claim}\n")).unwrap();
        let err = read_shard_log(&path).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty_log() {
        let log = read_shard_log(Path::new("/nonexistent/asf-ledger-nope.jsonl")).unwrap();
        assert_eq!(log, ShardLog::default());
    }

    #[test]
    fn unknown_records_count_and_stay_durable() {
        let path = tmp_file("skip");
        let claim = sample_records()[0].to_line();
        let future = r#"{"v":9,"kind":"claim"}"#;
        std::fs::write(&path, format!("{claim}\n{future}\n")).unwrap();
        let log = read_shard_log(&path).unwrap();
        assert_eq!(log.skipped_unknown, 1);
        assert_eq!(log.torn_bytes, 0, "unknown lines are valid prefix, not torn");
        // Recovery must NOT truncate the future record away.
        let (_, file) = recover_for_append(&path).unwrap();
        drop(file);
        let bytes = std::fs::read(&path).unwrap();
        assert!(String::from_utf8(bytes).unwrap().contains(future));
        std::fs::remove_file(&path).ok();
    }
}
