//! Perform-order log consumed by the SC-violation checker.
//!
//! When enabled, the machine records every memory access in the global
//! order it became architecturally final: loads when they retire, stores
//! when they merge with the memory system. The checker (in the
//! `asymfence` crate) combines this order with per-thread program order
//! to find Shasha–Snir cycles.

/// One logged access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScvEvent {
    /// Core that performed the access.
    pub core: usize,
    /// Word-granularity byte address.
    pub addr: u64,
    /// Whether the access is a write (stores and writing RMWs).
    pub is_write: bool,
    /// Program-order index of the instruction within its thread.
    pub po: u64,
}

/// The global perform-order log.
#[derive(Clone, Debug, Default)]
pub struct ScvLog {
    /// Events in global perform order.
    pub events: Vec<ScvEvent>,
}

impl ScvLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an access.
    pub fn record(&mut self, core: usize, addr: u64, is_write: bool, po: u64) {
        self.events.push(ScvEvent {
            core,
            addr,
            is_write,
            po,
        });
    }

    /// Number of logged accesses.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Removes `core`'s events with program order `>= min_po` — a W+
    /// rollback architecturally undoes those accesses, so they must not
    /// feed the SC checker.
    pub fn retract(&mut self, core: usize, min_po: u64) {
        self.events.retain(|e| e.core != core || e.po < min_po);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retract_removes_rolled_back_events() {
        let mut log = ScvLog::new();
        log.record(0, 8, false, 5);
        log.record(1, 8, false, 5);
        log.record(0, 16, true, 7);
        log.retract(0, 6);
        assert_eq!(log.len(), 2);
        assert!(log.events.iter().all(|e| e.core != 0 || e.po <= 5));
    }

    #[test]
    fn records_in_order() {
        let mut log = ScvLog::new();
        assert!(log.is_empty());
        log.record(0, 8, true, 0);
        log.record(1, 8, false, 0);
        assert_eq!(log.len(), 2);
        assert!(log.events[0].is_write);
        assert_eq!(log.events[1].core, 1);
    }
}
