//! A small, hermetic property-testing harness.
//!
//! Replaces the external `proptest` dependency so the tier-1 suite builds
//! and runs fully offline. The design is deliberately minimal:
//!
//! * a [`Gen`] trait pairs a *sampler* (value from a seeded [`SimRng`])
//!   with a *shrinker* (structurally smaller candidate values);
//! * [`check`] runs a property over pinned regression seeds first, then
//!   over freshly derived cases, and greedily shrinks the first failure;
//! * failing **seeds** are persisted to a checked-in file (one hex seed
//!   per line, proptest-style), so every future run replays them before
//!   exploring new cases;
//! * env knobs mirror `PROPTEST_CASES`: `ASF_PROP_CASES` overrides the
//!   case count, `ASF_PROP_SEED` the base seed.
//!
//! A persisted seed regenerates the *original* failing value; the harness
//! re-shrinks on replay, so reports stay minimal even as shrinking
//! improves.
//!
//! # Examples
//!
//! ```
//! use asymfence_common::prop::{check, vecs, u64s, Config};
//!
//! let gen = vecs(u64s(0, 100), 0, 10);
//! check("sum_bounded", &Config::from_env(64), &gen, |xs| {
//!     if xs.iter().sum::<u64>() <= 1000 {
//!         Ok(())
//!     } else {
//!         Err(format!("sum too large: {xs:?}"))
//!     }
//! });
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::rng::{hash64, SimRng};

/// A value generator plus structural shrinker.
///
/// `sample` must be a pure function of the RNG stream: the harness
/// persists bare seeds, and replaying a seed must regenerate the same
/// value forever.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of `v` to try during
    /// shrinking. The default proposes nothing.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ----------------------------------------------------------------------
// Base combinators
// ----------------------------------------------------------------------

/// Uniform `u64` in `[lo, hi]`, shrinking toward `lo`.
pub fn u64s(lo: u64, hi: u64) -> U64Range {
    assert!(lo <= hi);
    U64Range { lo, hi }
}

/// See [`u64s`].
#[derive(Clone, Copy, Debug)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

impl Gen for U64Range {
    type Value = u64;
    fn sample(&self, rng: &mut SimRng) -> u64 {
        rng.range(self.lo, self.hi)
    }
    fn shrink(&self, v: &u64) -> Vec<u64> {
        let mut out = Vec::new();
        if *v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (*v - self.lo) / 2;
            if mid != self.lo && mid != *v {
                out.push(mid);
            }
            out.push(*v - 1);
        }
        out.dedup();
        out
    }
}

/// Uniform `usize` in `[lo, hi]`, shrinking toward `lo`.
pub fn usizes(lo: usize, hi: usize) -> UsizeRange {
    UsizeRange {
        inner: u64s(lo as u64, hi as u64),
    }
}

/// See [`usizes`].
#[derive(Clone, Copy, Debug)]
pub struct UsizeRange {
    inner: U64Range,
}

impl Gen for UsizeRange {
    type Value = usize;
    fn sample(&self, rng: &mut SimRng) -> usize {
        self.inner.sample(rng) as usize
    }
    fn shrink(&self, v: &usize) -> Vec<usize> {
        self.inner
            .shrink(&(*v as u64))
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }
}

/// Uniform `u8` in `[lo, hi]`, shrinking toward `lo`.
pub fn u8s(lo: u8, hi: u8) -> U8Range {
    U8Range {
        inner: u64s(lo as u64, hi as u64),
    }
}

/// See [`u8s`].
#[derive(Clone, Copy, Debug)]
pub struct U8Range {
    inner: U64Range,
}

impl Gen for U8Range {
    type Value = u8;
    fn sample(&self, rng: &mut SimRng) -> u8 {
        self.inner.sample(rng) as u8
    }
    fn shrink(&self, v: &u8) -> Vec<u8> {
        self.inner
            .shrink(&(*v as u64))
            .into_iter()
            .map(|x| x as u8)
            .collect()
    }
}

/// Uniform booleans, shrinking `true → false`.
pub fn bools() -> BoolGen {
    BoolGen
}

/// See [`bools`].
#[derive(Clone, Copy, Debug)]
pub struct BoolGen;

impl Gen for BoolGen {
    type Value = bool;
    fn sample(&self, rng: &mut SimRng) -> bool {
        rng.below(2) == 1
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Vectors of `elem` with a length in `[min_len, max_len]`. Shrinks by
/// dropping elements (down to `min_len`) and by shrinking one element at
/// a time.
pub fn vecs<G: Gen>(elem: G, min_len: usize, max_len: usize) -> VecGen<G> {
    assert!(min_len <= max_len);
    VecGen {
        elem,
        min_len,
        max_len,
    }
}

/// See [`vecs`].
#[derive(Clone, Copy, Debug)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn sample(&self, rng: &mut SimRng) -> Vec<G::Value> {
        let len = rng.range(self.min_len as u64, self.max_len as u64) as usize;
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Drop a prefix/suffix half first (fast descent), then single
        // elements, then shrink elements in place.
        if v.len() > self.min_len {
            let half = (v.len() / 2).max(self.min_len);
            if half < v.len() {
                out.push(v[..half].to_vec());
                out.push(v[v.len() - half..].to_vec());
            }
            for i in 0..v.len() {
                let mut w = v.clone();
                w.remove(i);
                out.push(w);
            }
        }
        for (i, e) in v.iter().enumerate() {
            for se in self.elem.shrink(e) {
                let mut w = v.clone();
                w[i] = se;
                out.push(w);
            }
        }
        out
    }
}

/// Pairs of independent generators.
pub fn pairs<A: Gen, B: Gen>(a: A, b: B) -> PairGen<A, B> {
    PairGen { a, b }
}

/// See [`pairs`].
#[derive(Clone, Copy, Debug)]
pub struct PairGen<A, B> {
    a: A,
    b: B,
}

impl<A: Gen, B: Gen> Gen for PairGen<A, B> {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut SimRng) -> Self::Value {
        (self.a.sample(rng), self.b.sample(rng))
    }
    fn shrink(&self, (a, b): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .a
            .shrink(a)
            .into_iter()
            .map(|sa| (sa, b.clone()))
            .collect();
        out.extend(self.b.shrink(b).map_self(|sb| (a.clone(), sb)));
        out
    }
}

/// Triples of independent generators.
pub fn triples<A: Gen, B: Gen, C: Gen>(a: A, b: B, c: C) -> TripleGen<A, B, C> {
    TripleGen { a, b, c }
}

/// See [`triples`].
#[derive(Clone, Copy, Debug)]
pub struct TripleGen<A, B, C> {
    a: A,
    b: B,
    c: C,
}

impl<A: Gen, B: Gen, C: Gen> Gen for TripleGen<A, B, C> {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut SimRng) -> Self::Value {
        (self.a.sample(rng), self.b.sample(rng), self.c.sample(rng))
    }
    fn shrink(&self, (a, b, c): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = Vec::new();
        out.extend(self.a.shrink(a).map_self(|sa| (sa, b.clone(), c.clone())));
        out.extend(self.b.shrink(b).map_self(|sb| (a.clone(), sb, c.clone())));
        out.extend(self.c.shrink(c).map_self(|sc| (a.clone(), b.clone(), sc)));
        out
    }
}

// Internal sugar so the tuple shrinkers read uniformly.
trait MapSelf<T> {
    fn map_self<U>(self, f: impl FnMut(T) -> U) -> Vec<U>;
}
impl<T> MapSelf<T> for Vec<T> {
    fn map_self<U>(self, f: impl FnMut(T) -> U) -> Vec<U> {
        self.into_iter().map(f).collect()
    }
}

/// Maps a generator's output through `f`. Mapped values do not shrink;
/// implement [`Gen`] directly on the domain type when shrinking matters.
pub fn map<G: Gen, T: Clone + Debug>(inner: G, f: fn(G::Value) -> T) -> MapGen<G, T> {
    MapGen { inner, f }
}

/// See [`map`].
#[derive(Clone, Copy, Debug)]
pub struct MapGen<G: Gen, T> {
    inner: G,
    f: fn(<G as Gen>::Value) -> T,
}

impl<G: Gen, T: Clone + Debug> Gen for MapGen<G, T> {
    type Value = T;
    fn sample(&self, rng: &mut SimRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

// ----------------------------------------------------------------------
// Runner
// ----------------------------------------------------------------------

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of fresh cases to run (after pinned regressions).
    pub cases: u32,
    /// Base seed; case `i` uses `hash64(seed ^ i)`.
    pub seed: u64,
    /// Cap on shrinking iterations (accepted shrink steps × candidates).
    pub max_shrink_steps: u32,
    /// Checked-in regression-seed file (absolute path), if any.
    pub regressions: Option<PathBuf>,
}

impl Config {
    /// Builds a config honoring `ASF_PROP_CASES` and `ASF_PROP_SEED`.
    pub fn from_env(default_cases: u32) -> Self {
        let cases = std::env::var("ASF_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_cases);
        let seed = std::env::var("ASF_PROP_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(0xA5F0_2015);
        Config {
            cases,
            seed,
            max_shrink_steps: 4_000,
            regressions: None,
        }
    }

    /// Attaches a checked-in regression-seed file. Pinned seeds replay
    /// before new cases; new failures append their seed (best-effort).
    pub fn regressions(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Reads pinned seeds from a regression file (missing file = none).
pub fn read_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                return None;
            }
            parse_seed(l.split_whitespace().next()?)
        })
        .collect()
}

fn append_regression_seed(path: &Path, seed: u64, note: &str) {
    use std::io::Write as _;
    let header_needed = !path.exists();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
        return;
    };
    if header_needed {
        let _ = writeln!(
            f,
            "# asymfence prop-harness regression seeds.\n\
             # One hex seed per line; replayed (and re-shrunk) before new cases.\n\
             # Check this file in so every run replays past failures."
        );
    }
    let _ = writeln!(f, "{seed:#018x} # {note}");
}

fn run_prop<T, F>(prop: &F, v: &T) -> Result<(), String>
where
    T: Clone + Debug,
    F: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(v))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic (non-string payload)".into());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Greedily shrinks a failing value: repeatedly takes the first candidate
/// that still fails, until no candidate fails or the step budget runs out.
fn shrink_failure<G, F>(gen: &G, cfg: &Config, mut v: G::Value, prop: &F) -> (G::Value, String)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    let mut last_err = run_prop(prop, &v).err().unwrap_or_default();
    let mut steps = 0u32;
    'outer: loop {
        for cand in gen.shrink(&v) {
            steps += 1;
            if steps > cfg.max_shrink_steps {
                break 'outer;
            }
            if let Err(e) = run_prop(prop, &cand) {
                v = cand;
                last_err = e;
                continue 'outer;
            }
        }
        break;
    }
    (v, last_err)
}

/// Checks `prop` over pinned regression seeds, then `cfg.cases` fresh
/// cases. Panics with the shrunk counterexample and its seed on failure.
///
/// # Panics
///
/// Panics if the property fails for any pinned or generated case.
pub fn check<G, F>(name: &str, cfg: &Config, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence inner shrink panics
    let outcome = check_inner(name, cfg, gen, &prop);
    std::panic::set_hook(hook);
    if let Err(msg) = outcome {
        panic!("{msg}");
    }
}

fn check_inner<G, F>(name: &str, cfg: &Config, gen: &G, prop: &F) -> Result<(), String>
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    let pinned: Vec<u64> = cfg
        .regressions
        .as_deref()
        .map(read_regression_seeds)
        .unwrap_or_default();
    for &seed in &pinned {
        let v = gen.sample(&mut SimRng::new(seed));
        if run_prop(prop, &v).is_err() {
            let (small, err) = shrink_failure(gen, cfg, v, prop);
            return Err(format!(
                "property `{name}` failed on PINNED regression seed {seed:#018x}\n\
                 shrunk counterexample: {small:?}\n{err}"
            ));
        }
    }
    for i in 0..cfg.cases {
        let case_seed = hash64(cfg.seed ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let v = gen.sample(&mut SimRng::new(case_seed));
        if run_prop(prop, &v).is_err() {
            let (small, err) = shrink_failure(gen, cfg, v, prop);
            if let Some(path) = cfg.regressions.as_deref() {
                append_regression_seed(
                    path,
                    case_seed,
                    &format!("{name}: shrinks to {small:?}"),
                );
            }
            return Err(format!(
                "property `{name}` failed (case {i}, seed {case_seed:#018x};\n\
                 rerun just this case with ASF_PROP_SEED={:#x} ASF_PROP_CASES=1)\n\
                 shrunk counterexample: {small:?}\n{err}",
                cfg.seed ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let gen = vecs(u64s(0, 9), 0, 5);
        let mut count = 0u32;
        let counter = std::cell::RefCell::new(&mut count);
        let cfg = Config {
            cases: 17,
            seed: 1,
            max_shrink_steps: 100,
            regressions: None,
        };
        check("all_small", &cfg, &gen, |xs| {
            **counter.borrow_mut() += 1;
            if xs.iter().all(|&x| x < 10) {
                Ok(())
            } else {
                Err("impossible".into())
            }
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        let gen = vecs(u64s(0, 100), 0, 20);
        let cfg = Config {
            cases: 200,
            seed: 3,
            max_shrink_steps: 4_000,
            regressions: None,
        };
        let err = check_inner("no_big", &cfg, &gen, &|xs: &Vec<u64>| {
            if xs.iter().any(|&x| x >= 50) {
                Err(format!("found big in {xs:?}"))
            } else {
                Ok(())
            }
        })
        .expect_err("property must fail");
        // Greedy shrink must reach the canonical minimal case: one element
        // at the failure boundary.
        assert!(err.contains("shrunk counterexample: [50]"), "{err}");
    }

    #[test]
    fn shrink_is_deterministic_for_a_seed() {
        let gen = pairs(u64s(0, 999), vecs(bools(), 0, 8));
        let mut a = SimRng::new(77);
        let mut b = SimRng::new(77);
        assert_eq!(format!("{:?}", gen.sample(&mut a)), format!("{:?}", gen.sample(&mut b)));
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let gen = u64s(0, 1000);
        let cfg = Config {
            cases: 300,
            seed: 9,
            max_shrink_steps: 2_000,
            regressions: None,
        };
        let err = check_inner("no_panic", &cfg, &gen, &|&x: &u64| {
            assert!(x < 10, "x too big: {x}");
            Ok(())
        })
        .expect_err("must fail");
        assert!(err.contains("shrunk counterexample: 10"), "{err}");
    }

    #[test]
    fn regression_seeds_roundtrip() {
        let dir = std::env::temp_dir().join("asf_prop_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("case.seeds");
        append_regression_seed(&path, 0xDEAD_BEEF, "note");
        append_regression_seed(&path, 42, "other");
        let seeds = read_regression_seeds(&path);
        assert_eq!(seeds, vec![0xDEAD_BEEF, 42]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_seed_replays_before_new_cases() {
        let dir = std::env::temp_dir().join("asf_prop_pin_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("pin.seeds");
        // Find a seed whose sample violates the property, pin it, and
        // verify the pinned replay catches it even with zero fresh cases.
        let gen = u64s(0, 100);
        let bad_seed = (0u64..)
            .find(|&s| gen.sample(&mut SimRng::new(s)) >= 50)
            .unwrap();
        append_regression_seed(&path, bad_seed, "pinned");
        let cfg = Config {
            cases: 0,
            seed: 0,
            max_shrink_steps: 100,
            regressions: Some(path.clone()),
        };
        let err = check_inner("pin", &cfg, &gen, &|&x: &u64| {
            if x < 50 {
                Ok(())
            } else {
                Err("big".into())
            }
        })
        .expect_err("pinned seed must fail");
        assert!(err.contains("PINNED"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_knobs_parse() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("16"), Some(16));
        assert_eq!(parse_seed("zz"), None);
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let gen = vecs(u64s(0, 5), 2, 6);
        let v = vec![1, 2];
        assert!(gen.shrink(&v).iter().all(|w| w.len() >= 2));
    }
}
