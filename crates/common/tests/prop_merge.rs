//! Property tests pinning the algebra the sharded sweep relies on:
//! [`MachineStats::merge`] and [`FenceTally::merge`] are associative,
//! have their `Default` as identity, and are fold-order invariant —
//! which is exactly what makes a ledger merge (any shard count, any
//! interleaving, any resume history) reproduce the single-process fold.
//!
//! Runs on the in-repo property harness (`asymfence_common::prop`):
//! failing case seeds persist to `tests/regressions/prop_merge.seeds`
//! and replay before fresh cases. `ASF_PROP_CASES` / `ASF_PROP_SEED`
//! override the budget and base seed.

use asymfence_common::prop::{bools, check, map, pairs, triples, u64s, vecs, Config};
use asymfence_common::stats::CoreStats;
use asymfence_common::trace::FenceTally;
use asymfence_common::MachineStats;

fn prop_cfg(cases: u32) -> Config {
    Config::from_env(cases).regressions("tests/regressions/prop_merge.seeds")
}

// ---- generators ---------------------------------------------------------

type StatsRaw = ((u64, bool), (u64, u64, u64), Vec<Vec<u64>>);

fn build_stats(raw: StatsRaw) -> MachineStats {
    let ((cycles, deadlocked), (base, retry, messages), cores) = raw;
    let mut s = MachineStats {
        cycles,
        deadlocked,
        ..MachineStats::default()
    };
    s.traffic.base_bytes = base;
    s.traffic.retry_bytes = retry;
    s.traffic.messages = messages;
    s.cores = cores
        .iter()
        .map(|vals| CoreStats::from_values(vals).expect("generator emits FIELDS values"))
        .collect();
    s
}

fn stats_gen() -> impl asymfence_common::prop::Gen<Value = MachineStats> {
    map(
        triples(
            pairs(u64s(0, 1 << 40), bools()),
            triples(u64s(0, 1 << 30), u64s(0, 1 << 30), u64s(0, 1 << 20)),
            // 0..=4 cores so merges exercise the index-extension path.
            vecs(vecs(u64s(0, 1 << 20), CoreStats::FIELDS, CoreStats::FIELDS), 0, 4),
        ),
        build_stats,
    )
}

fn build_tally(vals: Vec<u64>) -> FenceTally {
    let mut t = FenceTally {
        issued: vals[0],
        completed: vals[1],
        rolled_back: vals[2],
        demoted: vals[3],
        bounces: vals[4],
        total_latency: vals[5],
        max_latency: vals[6],
        ..FenceTally::default()
    };
    for (i, b) in t.latency_buckets.iter_mut().enumerate() {
        *b = vals[7 + i];
    }
    let off = 7 + t.latency_buckets.len();
    for (i, b) in t.bounce_buckets.iter_mut().enumerate() {
        *b = vals[off + i];
    }
    t
}

fn tally_gen() -> impl asymfence_common::prop::Gen<Value = FenceTally> {
    let n = 7 + 32 + 8; // scalars + latency buckets + bounce buckets
    map(vecs(u64s(0, 1 << 30), n, n), build_tally)
}

// ---- MachineStats -------------------------------------------------------

#[test]
fn machine_stats_merge_is_associative() {
    let gen = triples(stats_gen(), stats_gen(), stats_gen());
    check(
        "machine_stats_merge_is_associative",
        &prop_cfg(64),
        &gen,
        |(a, b, c)| {
            let left = a.clone().merged(b).merged(c);
            let right = a.clone().merged(&b.clone().merged(c));
            if left != right {
                return Err(format!("(a·b)·c != a·(b·c): {left:?} vs {right:?}"));
            }
            Ok(())
        },
    );
}

#[test]
fn machine_stats_default_is_identity() {
    check(
        "machine_stats_default_is_identity",
        &prop_cfg(64),
        &stats_gen(),
        |s| {
            if MachineStats::default().merged(s) != *s {
                return Err("default·s != s".into());
            }
            if s.clone().merged(&MachineStats::default()) != *s {
                return Err("s·default != s".into());
            }
            Ok(())
        },
    );
}

#[test]
fn machine_stats_fold_is_order_and_grouping_invariant() {
    let gen = vecs(stats_gen(), 0, 6);
    check(
        "machine_stats_fold_is_order_and_grouping_invariant",
        &prop_cfg(48),
        &gen,
        |parts| {
            let serial = parts
                .iter()
                .fold(MachineStats::default(), |acc, s| acc.merged(s));
            // Reversed order (shards finish in any order).
            let reversed = parts
                .iter()
                .rev()
                .fold(MachineStats::default(), |acc, s| acc.merged(s));
            if reversed != serial {
                return Err("reversed fold diverged".into());
            }
            // Arbitrary grouping: pairwise tree reduction.
            let mut layer: Vec<MachineStats> = parts.clone();
            while layer.len() > 1 {
                layer = layer
                    .chunks(2)
                    .map(|c| {
                        c.iter()
                            .fold(MachineStats::default(), |acc, s| acc.merged(s))
                    })
                    .collect();
            }
            let tree = layer.into_iter().next().unwrap_or_default();
            if tree != serial {
                return Err("tree fold diverged".into());
            }
            Ok(())
        },
    );
}

// ---- FenceTally ---------------------------------------------------------

#[test]
fn fence_tally_merge_is_associative() {
    let gen = triples(tally_gen(), tally_gen(), tally_gen());
    check(
        "fence_tally_merge_is_associative",
        &prop_cfg(64),
        &gen,
        |(a, b, c)| {
            let mut left = a.clone();
            left.merge(b);
            left.merge(c);
            let mut bc = b.clone();
            bc.merge(c);
            let mut right = a.clone();
            right.merge(&bc);
            if left != right {
                return Err(format!("(a·b)·c != a·(b·c): {left:?} vs {right:?}"));
            }
            Ok(())
        },
    );
}

#[test]
fn fence_tally_default_is_identity() {
    check(
        "fence_tally_default_is_identity",
        &prop_cfg(64),
        &tally_gen(),
        |t| {
            let mut left = FenceTally::default();
            left.merge(t);
            if left != *t {
                return Err("default·t != t".into());
            }
            let mut right = t.clone();
            right.merge(&FenceTally::default());
            if right != *t {
                return Err("t·default != t".into());
            }
            Ok(())
        },
    );
}

#[test]
fn fence_tally_fold_is_order_and_grouping_invariant() {
    let gen = vecs(tally_gen(), 0, 6);
    check(
        "fence_tally_fold_is_order_and_grouping_invariant",
        &prop_cfg(48),
        &gen,
        |parts| {
            let fold = |iter: &mut dyn Iterator<Item = &FenceTally>| {
                let mut acc = FenceTally::default();
                for t in iter {
                    acc.merge(t);
                }
                acc
            };
            let serial = fold(&mut parts.iter());
            let reversed = fold(&mut parts.iter().rev());
            if reversed != serial {
                return Err("reversed fold diverged".into());
            }
            let mut layer: Vec<FenceTally> = parts.clone();
            while layer.len() > 1 {
                layer = layer.chunks(2).map(|c| fold(&mut c.iter())).collect();
            }
            let tree = layer.into_iter().next().unwrap_or_default();
            if tree != serial {
                return Err("tree fold diverged".into());
            }
            Ok(())
        },
    );
}
